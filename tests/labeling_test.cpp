#include "offline/labeling.h"

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "test_util.h"

namespace ida {
namespace {

class LabelingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto b = GenerateBenchmark(SmallGeneratorOptions(31));
    ASSERT_TRUE(b.ok());
    bench_ = new SynthBenchmark(std::move(*b));
    ActionExecutor exec;
    auto repo = ReplayedRepository::Build(bench_->log, bench_->registry, exec);
    ASSERT_TRUE(repo.ok());
    repo_ = new ReplayedRepository(std::move(*repo));
  }
  static void TearDownTestSuite() {
    delete repo_;
    delete bench_;
    repo_ = nullptr;
    bench_ = nullptr;
  }

  static MeasureSet Measures() {
    return {CreateMeasure("simpson"), CreateMeasure("macarthur"),
            CreateMeasure("deviation"), CreateMeasure("log_length")};
  }

  static SynthBenchmark* bench_;
  static ReplayedRepository* repo_;
};

SynthBenchmark* LabelingTest::bench_ = nullptr;
ReplayedRepository* LabelingTest::repo_ = nullptr;

TEST_F(LabelingTest, RepositoryReplaysEverySession) {
  EXPECT_EQ(repo_->failed_replays(), 0u);
  EXPECT_EQ(repo_->trees().size(), bench_->log.size());
  EXPECT_EQ(repo_->total_steps(), bench_->log.total_actions());
}

TEST_F(LabelingTest, ActionPoolDeduplicated) {
  const auto& filters = repo_->ActionsOfType(ActionType::kFilter);
  const auto& groupbys = repo_->ActionsOfType(ActionType::kGroupBy);
  EXPECT_FALSE(groupbys.empty());
  for (size_t i = 0; i < filters.size(); ++i) {
    for (size_t j = i + 1; j < filters.size(); ++j) {
      EXPECT_FALSE(filters[i] == filters[j]) << "duplicate at " << i;
    }
  }
  EXPECT_TRUE(repo_->ActionsOfType(ActionType::kBack).empty());
}

TEST_F(LabelingTest, AllDisplayPairsCoverEveryStep) {
  EXPECT_EQ(repo_->AllDisplayPairs().size(), repo_->total_steps());
}

TEST_F(LabelingTest, NormalizedLabelerLabelsEveryStep) {
  NormalizedLabeler labeler(Measures());
  ASSERT_TRUE(labeler.Preprocess(*repo_).ok());
  auto labeled = LabelRepository(*repo_, &labeler);
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ(labeled->size(), repo_->total_steps());
  for (const LabeledStep& s : *labeled) {
    EXPECT_FALSE(s.result.dominant.empty());
    EXPECT_EQ(s.result.raw_scores.size(), 4u);
  }
}

TEST_F(LabelingTest, ReferenceBasedLabelerRespectsSamplingCap) {
  ReferenceBasedLabelerOptions options;
  options.max_reference_actions = 5;
  ReferenceBasedLabeler labeler(Measures(), repo_, options);
  const SessionTree& tree = repo_->trees().front();
  auto result = labeler.LabelStep(tree, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(labeler.timings().reference_actions_executed, 5u);
}

TEST_F(LabelingTest, LabelersRejectBadSteps) {
  NormalizedLabeler labeler(Measures());
  ASSERT_TRUE(labeler.Preprocess(*repo_).ok());
  const SessionTree& tree = repo_->trees().front();
  EXPECT_FALSE(labeler.LabelStep(tree, 0).ok());
  EXPECT_FALSE(labeler.LabelStep(tree, tree.num_steps() + 1).ok());
  ReferenceBasedLabeler rb(Measures(), repo_);
  EXPECT_FALSE(rb.LabelStep(tree, 0).ok());
}

TEST_F(LabelingTest, MethodsAgreeMoreThanChance) {
  NormalizedLabeler norm(Measures());
  ASSERT_TRUE(norm.Preprocess(*repo_).ok());
  auto norm_labels = LabelRepository(*repo_, &norm);
  ASSERT_TRUE(norm_labels.ok());

  ReferenceBasedLabelerOptions options;
  options.max_reference_actions = 24;
  ReferenceBasedLabeler rb(Measures(), repo_, options);
  auto rb_labels = LabelRepository(*repo_, &rb);
  ASSERT_TRUE(rb_labels.ok());

  size_t agree = 0, co_labeled = 0;
  for (size_t i = 0; i < norm_labels->size(); ++i) {
    int pn = (*norm_labels)[i].result.primary();
    int pr = (*rb_labels)[i].result.primary();
    if (pn < 0 || pr < 0) continue;  // thin reference: RB abstains
    ++co_labeled;
    if (pn == pr) ++agree;
  }
  ASSERT_GT(co_labeled, 20u);
  double rate = static_cast<double>(agree) / static_cast<double>(co_labeled);
  EXPECT_GT(rate, 0.3);  // above the 0.25 chance level
}

TEST_F(LabelingTest, DeterministicAcrossRuns) {
  NormalizedLabeler a(Measures()), b(Measures());
  ASSERT_TRUE(a.Preprocess(*repo_).ok());
  ASSERT_TRUE(b.Preprocess(*repo_).ok());
  auto la = LabelRepository(*repo_, &a);
  auto lb = LabelRepository(*repo_, &b);
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  for (size_t i = 0; i < la->size(); ++i) {
    EXPECT_EQ((*la)[i].result.primary(), (*lb)[i].result.primary());
  }
}

TEST(ReplayedRepositoryTest, EmptyLogRejected) {
  SessionLog empty;
  DatasetRegistry registry;
  ActionExecutor exec;
  EXPECT_FALSE(ReplayedRepository::Build(empty, registry, exec).ok());
}

}  // namespace
}  // namespace ida
