// Fixture tests for the ida_lint invariant checker (tools/ida_lint). Every
// rule gets a positive fixture (the violation is reported, at the right
// line) and a negative fixture (the compliant spelling stays clean), plus
// tests for the suppression mechanism and a regression fixture that
// minimizes the artifact-writer pattern of src/engine/model.cc — the exact
// shape the unordered-iteration rule exists to protect.
#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace ida::lint {
namespace {

std::vector<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule,
             int line = -1) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule &&
                              (line < 0 || f.line == line);
                     });
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& file,
                const std::string& rule, int line = -1) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.file == file && f.rule == rule &&
                              (line < 0 || f.line == line);
                     });
}

// Cross-file lint of a single in-memory file with the default options
// (lock-discipline and suppression audit on, layering off).
std::vector<Finding> LintProjectOne(const std::string& path,
                                    const std::string& content) {
  return LintProjectSources({SourceFile{path, content}}, ProjectOptions{});
}

ProjectOptions LayeredOptions(const std::string& table) {
  ProjectOptions options;
  options.src_root = "src";
  options.layering_path = "layering.txt";
  options.layering_table = table;
  return options;
}

TEST(LintRegistryTest, RulesAreRegisteredAndKnown) {
  EXPECT_GE(Rules().size(), 11u);
  EXPECT_TRUE(IsKnownRule("unordered-iter"));
  EXPECT_TRUE(IsKnownRule("float-eq"));
  EXPECT_TRUE(IsKnownRule("lock-discipline"));
  EXPECT_TRUE(IsKnownRule("layering"));
  EXPECT_TRUE(IsKnownRule("stale-suppression"));
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

TEST(UnorderedIterRuleTest, FlagsRangeForOverUnorderedMap) {
  const char* fixture =
      "#include <unordered_map>\n"
      "void F() {\n"
      "  std::unordered_map<std::string, int> counts;\n"
      "  for (const auto& [key, value] : counts) {\n"
      "    Emit(key, value);\n"
      "  }\n"
      "}\n";
  auto findings = LintSource("src/fake/serialize.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "unordered-iter", 4))
      << "fixture rules: " << testing::PrintToString(RulesOf(findings));
}

TEST(UnorderedIterRuleTest, FlagsIteratorLoopAndMultiLineDeclaration) {
  const char* fixture =
      "#include <unordered_map>\n"
      "std::unordered_map<internal::DisplayPair, double,\n"
      "                   internal::DisplayPairHash> cache;\n"
      "void F() {\n"
      "  for (auto it = cache.begin(); it != cache.end(); ++it) Emit(*it);\n"
      "}\n";
  auto findings = LintSource("src/fake/cache.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "unordered-iter", 5));
}

TEST(UnorderedIterRuleTest, IgnoresOrderedMapAndNonIteratingUse) {
  const char* fixture =
      "#include <map>\n"
      "#include <unordered_map>\n"
      "void F() {\n"
      "  std::map<std::string, int> ordered;\n"
      "  std::unordered_map<std::string, int> index;\n"
      "  for (const auto& [key, value] : ordered) Emit(key, value);\n"
      "  index.emplace(\"a\", 1);\n"
      "  int hits = index.count(\"a\") > 0 ? 1 : 0;\n"
      "  Use(hits);\n"
      "}\n";
  auto findings = LintSource("src/fake/ordered.cc", fixture);
  EXPECT_FALSE(HasRule(findings, "unordered-iter"));
}

// Regression fixture: the minimized artifact-writer pattern from
// src/engine/model.cc. The intern pool keeps an unordered index *plus* a
// dense insertion-ordered vector; serialization must walk the vector. If
// someone "simplifies" the writer to walk the index, the artifact byte
// order — and therefore its FNV-1a checksum — starts depending on the hash
// seed, which is exactly the corruption this rule exists to catch.
TEST(UnorderedIterRuleTest, RegressionArtifactWriterPattern) {
  const char* compliant =
      "struct InternPools {\n"
      "  std::vector<const Display*> displays;\n"
      "  std::unordered_map<const Display*, uint32_t> display_index;\n"
      "};\n"
      "void WritePayload(const InternPools& pools, Writer* w) {\n"
      "  w->U32(static_cast<uint32_t>(pools.displays.size()));\n"
      "  for (const Display* d : pools.displays) WriteDisplay(*d, w);\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintSource("src/engine/model.cc", compliant), "unordered-iter"));

  const char* seeded_violation =
      "struct InternPools {\n"
      "  std::vector<const Display*> displays;\n"
      "  std::unordered_map<const Display*, uint32_t> display_index;\n"
      "};\n"
      "void WritePayload(const InternPools& pools, Writer* w) {\n"
      "  std::unordered_map<const Display*, uint32_t> display_index;\n"
      "  w->U32(static_cast<uint32_t>(display_index.size()));\n"
      "  for (const auto& [d, id] : display_index) WriteDisplay(*d, w);\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintSource("src/engine/model.cc", seeded_violation),
                      "unordered-iter", 8));
}

// ---------------------------------------------------------------------------
// raw-random
// ---------------------------------------------------------------------------

TEST(RawRandomRuleTest, FlagsRandAndRandomDevice) {
  const char* fixture =
      "#include <random>\n"
      "int F() {\n"
      "  std::random_device rd;\n"
      "  return rand() % 10;\n"
      "}\n";
  auto findings = LintSource("src/fake/random.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "raw-random", 3));
  EXPECT_TRUE(HasRule(findings, "raw-random", 4));
}

TEST(RawRandomRuleTest, FlagsRawEngineButExemptsRngWrapper) {
  const char* fixture =
      "#include <random>\n"
      "std::mt19937_64 engine;\n";
  EXPECT_TRUE(HasRule(LintSource("src/fake/engine.cc", fixture), "raw-random"));
  // common/rng.h is the sanctioned owner of the raw engine.
  EXPECT_FALSE(
      HasRule(LintSource("src/common/rng.h", fixture), "raw-random"));
}

TEST(RawRandomRuleTest, IgnoresSeededRngAndSimilarNames) {
  const char* fixture =
      "#include \"common/rng.h\"\n"
      "double F(Rng& rng) {\n"
      "  int operand = 3;  // 'rand' inside a word must not match\n"
      "  return rng.UniformReal(0.0, 1.0) + operand;\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSource("src/fake/uses_rng.cc", fixture),
                       "raw-random"));
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

TEST(WallClockRuleTest, FlagsSystemClockAndTimeNullptr) {
  const char* fixture =
      "#include <chrono>\n"
      "#include <ctime>\n"
      "long F() {\n"
      "  auto now = std::chrono::system_clock::now();\n"
      "  return time(nullptr) + now.time_since_epoch().count();\n"
      "}\n";
  auto findings = LintSource("src/fake/clock.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "wall-clock", 4));
  EXPECT_TRUE(HasRule(findings, "wall-clock", 5));
}

TEST(WallClockRuleTest, AllowsSteadyClockDurations) {
  const char* fixture =
      "#include <chrono>\n"
      "double Seconds() {\n"
      "  auto start = std::chrono::steady_clock::now();\n"
      "  Work();\n"
      "  return std::chrono::duration<double>(\n"
      "             std::chrono::steady_clock::now() - start).count();\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSource("src/fake/timer.cc", fixture),
                       "wall-clock"));
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

TEST(FloatEqRuleTest, FlagsComparisonOfDeclaredDoubles) {
  const char* fixture =
      "int Best(const double* votes, double best_votes, int n) {\n"
      "  for (int label = 0; label < n; ++label) {\n"
      "    if (votes[label] == best_votes) return label;\n"
      "  }\n"
      "  return -1;\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintSource("src/fake/vote.cc", fixture), "float-eq", 3));
}

TEST(FloatEqRuleTest, FlagsFloatLiteralComparison) {
  const char* fixture =
      "bool IsZero(double x) { return x == 0.0; }\n";
  EXPECT_TRUE(HasRule(LintSource("src/fake/zero.cc", fixture), "float-eq", 1));
}

TEST(FloatEqRuleTest, IgnoresIntegerAndSizeComparisons) {
  const char* fixture =
      "size_t F(const std::vector<double>& xs, int total) {\n"
      "  if (xs.size() % 2 == 1) return 0;\n"
      "  if (total == 0) return 1;\n"
      "  double scale = total > 0 ? 2.0 : 1.0;\n"
      "  return scale > 1.5 ? xs.size() : 0;\n"
      "}\n";
  auto findings = LintSource("src/fake/ints.cc", fixture);
  EXPECT_FALSE(HasRule(findings, "float-eq"))
      << testing::PrintToString(RulesOf(findings));
}

TEST(FloatEqRuleTest, IgnoresLessEqualAndShiftOperators) {
  const char* fixture =
      "bool F(double a, double b) {\n"
      "  if (a <= b) return true;\n"
      "  if (a >= b) return false;\n"
      "  return a < b;\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSource("src/fake/releq.cc", fixture), "float-eq"));
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

TEST(IncludeGuardRuleTest, FlagsHeaderWithoutPragmaOnce) {
  const char* fixture =
      "// A header that forgot its guard.\n"
      "#include <vector>\n"
      "inline int F() { return 1; }\n";
  EXPECT_TRUE(
      HasRule(LintSource("src/fake/guardless.h", fixture), "include-guard", 2));
}

TEST(IncludeGuardRuleTest, AcceptsCommentThenPragmaOnce) {
  const char* fixture =
      "// File-level comment, as the style prescribes.\n"
      "#pragma once\n"
      "\n"
      "inline int F() { return 1; }\n";
  EXPECT_FALSE(
      HasRule(LintSource("src/fake/guarded.h", fixture), "include-guard"));
}

TEST(IncludeGuardRuleTest, DoesNotApplyToSourceFiles) {
  const char* fixture = "int main() { return 0; }\n";
  EXPECT_FALSE(
      HasRule(LintSource("src/fake/main.cc", fixture), "include-guard"));
}

// ---------------------------------------------------------------------------
// doc-comment
// ---------------------------------------------------------------------------

TEST(DocCommentRuleTest, FlagsMissingFileAndTypeComments) {
  const char* fixture =
      "#pragma once\n"
      "\n"
      "class Widget {\n"
      " public:\n"
      "  int size() const { return 0; }\n"
      "};\n";
  auto findings = LintSource("src/fake/widget.h", fixture);
  EXPECT_TRUE(HasRule(findings, "doc-comment", 1));  // no file-level comment
  EXPECT_TRUE(HasRule(findings, "doc-comment", 3));  // undocumented class
}

TEST(DocCommentRuleTest, AcceptsDocumentedHeaderAndTemplates) {
  const char* fixture =
      "// Widgets for the fixture suite.\n"
      "#pragma once\n"
      "\n"
      "/// A documented widget.\n"
      "class Widget {};\n"
      "\n"
      "/// A documented template, with the doc above the introducer.\n"
      "template <typename T>\n"
      "struct Box { T value; };\n"
      "\n"
      "class Forward;\n";
  auto findings = LintSource("src/fake/widget.h", fixture);
  EXPECT_FALSE(HasRule(findings, "doc-comment"))
      << testing::PrintToString(RulesOf(findings));
}

// ---------------------------------------------------------------------------
// sanitizer-hostile
// ---------------------------------------------------------------------------

TEST(SanitizerHostileRuleTest, FlagsDetachAndLongjmp) {
  const char* fixture =
      "#include <csetjmp>\n"
      "#include <thread>\n"
      "void F(std::jmp_buf env) {\n"
      "  std::thread worker(Work);\n"
      "  worker.detach();\n"
      "  std::longjmp(env, 1);\n"
      "}\n";
  auto findings = LintSource("src/fake/hostile.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "sanitizer-hostile", 5));
  EXPECT_TRUE(HasRule(findings, "sanitizer-hostile", 6));
}

TEST(SanitizerHostileRuleTest, AllowsJoinedThreads) {
  const char* fixture =
      "#include <thread>\n"
      "void F() {\n"
      "  std::thread worker(Work);\n"
      "  worker.join();\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSource("src/fake/joined.cc", fixture),
                       "sanitizer-hostile"));
}

// ---------------------------------------------------------------------------
// byte-cast
// ---------------------------------------------------------------------------

TEST(ByteCastRuleTest, FlagsPointerCastOnByteBuffer) {
  const char* fixture =
      "uint32_t PeekCount(const char* bytes) {\n"
      "  return *reinterpret_cast<const uint32_t*>(bytes + 12);\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(LintSource("src/fake/peek.cc", fixture), "byte-cast", 2));
}

TEST(ByteCastRuleTest, FlagsWrappedCastAcrossLines) {
  const char* fixture =
      "const Record* Records(const uint8_t* base) {\n"
      "  return reinterpret_cast<\n"
      "      const Record*>(base);\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(LintSource("src/fake/records.cc", fixture), "byte-cast", 2));
}

TEST(ByteCastRuleTest, IgnoresIntegralTargets) {
  // The ted.h display-pair hash casts pointers to uintptr_t — an integral
  // target never re-types memory, so it must stay clean.
  const char* fixture =
      "size_t HashPair(const Display* a, const Display* b) {\n"
      "  size_t h = reinterpret_cast<uintptr_t>(a) * 0x9E3779B97F4A7C15ULL;\n"
      "  h ^= reinterpret_cast<uintptr_t>(b) + (h << 6) + (h >> 2);\n"
      "  return h;\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintSource("src/fake/pair_hash.cc", fixture), "byte-cast"));
}

TEST(ByteCastRuleTest, ExemptsSanctionedByteReaders) {
  const char* fixture =
      "const double* Doubles(const uint8_t* base) {\n"
      "  return reinterpret_cast<const double*>(base);\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintSource("src/common/binio.h", fixture), "byte-cast"));
  EXPECT_FALSE(
      HasRule(LintSource("src/common/mapped_file.cc", fixture), "byte-cast"));
  EXPECT_FALSE(
      HasRule(LintSource("src/engine/artifact_v4.cc", fixture), "byte-cast"));
  EXPECT_TRUE(
      HasRule(LintSource("src/engine/model.cc", fixture), "byte-cast"));
}

TEST(ByteCastRuleTest, SuppressibleWithAllow) {
  const char* fixture =
      "void* ThreadKey(const Worker* w) {\n"
      "  // ida-lint: allow(byte-cast): opaque key, never dereferenced\n"
      "  return reinterpret_cast<void*>(const_cast<Worker*>(w));\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintSource("src/fake/key.cc", fixture), "byte-cast"));
}

// ---------------------------------------------------------------------------
// Suppressions, comment stripping, formatting
// ---------------------------------------------------------------------------

TEST(SuppressionTest, AllowOnSameOrPrecedingLine) {
  const char* same_line =
      "bool F(double a, double b) {\n"
      "  return a == b;  // ida-lint: allow(float-eq): exact tie rule\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSource("src/fake/s1.cc", same_line), "float-eq"));

  const char* preceding_line =
      "bool F(double a, double b) {\n"
      "  // ida-lint: allow(float-eq): max is copied bitwise from the array\n"
      "  return a == b;\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintSource("src/fake/s2.cc", preceding_line), "float-eq"));
}

TEST(SuppressionTest, AllowAnywhereInPrecedingCommentBlock) {
  // A multi-line justification may lead with the directive; the whole
  // contiguous // block above the finding is scanned.
  const char* block =
      "bool F(double a, double b) {\n"
      "  // ida-lint: allow(float-eq): deliberate exact comparison —\n"
      "  // the operand is copied bitwise out of the array, so the\n"
      "  // winner always compares equal.\n"
      "  return a == b;\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSource("src/fake/s4.cc", block), "float-eq"));

  // A non-comment line breaks the block: the directive no longer applies.
  const char* interrupted =
      "bool F(double a, double b) {\n"
      "  // ida-lint: allow(float-eq): stale justification\n"
      "  int unused = 0;\n"
      "  (void)unused;\n"
      "  return a == b;\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(LintSource("src/fake/s5.cc", interrupted), "float-eq"));
}

TEST(SuppressionTest, AllowIsRuleSpecific) {
  const char* wrong_rule =
      "bool F(double a, double b) {\n"
      "  return a == b;  // ida-lint: allow(unordered-iter)\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintSource("src/fake/s3.cc", wrong_rule), "float-eq"));
}

TEST(CommentStrippingTest, TokensInCommentsAndStringsDoNotTrigger) {
  const char* fixture =
      "// rand() and system_clock in a comment are fine.\n"
      "/* so is std::random_device in a block comment */\n"
      "const char* kDoc = \"call rand() then time(nullptr)\";\n";
  auto findings = LintSource("src/fake/comments.cc", fixture);
  EXPECT_FALSE(HasRule(findings, "raw-random"));
  EXPECT_FALSE(HasRule(findings, "wall-clock"));
}

TEST(FormatFindingTest, SingleLineReport) {
  Finding f{"src/engine/model.cc", 42, "unordered-iter", "msg"};
  EXPECT_EQ(FormatFinding(f), "src/engine/model.cc:42: [unordered-iter] msg");
}

TEST(LintSourceTest, FindingsAreSortedByLine) {
  const char* fixture =
      "#include <random>\n"
      "int F() { return rand(); }\n"
      "long G() { return time(nullptr); }\n"
      "std::random_device rd;\n";
  auto findings = LintSource("src/fake/multi.cc", fixture);
  ASSERT_GE(findings.size(), 3u);
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].line, findings[i].line);
  }
}

// ---------------------------------------------------------------------------
// raw string literals
// ---------------------------------------------------------------------------

TEST(RawStringTest, TokensInsideRawStringsDoNotTrigger) {
  const char* fixture =
      "const char* kA = R\"(rand() and std::system_clock::now())\";\n"
      "const char* kB = uR\"sep(time(nullptr) \")\" still inside)sep\";\n";
  auto findings = LintSource("src/fake/raw.cc", fixture);
  EXPECT_FALSE(HasRule(findings, "raw-random"));
  EXPECT_FALSE(HasRule(findings, "wall-clock"));
}

TEST(RawStringTest, MultiLineRawStringIsStripped) {
  const char* fixture =
      "const char* kDoc = R\"(\n"
      "  rand() on an interior line\n"
      ")\";\n"
      "int F() { return rand(); }\n";
  auto findings = LintSource("src/fake/raw2.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "raw-random", 4));
  EXPECT_FALSE(HasRule(findings, "raw-random", 2));
}

TEST(RawStringTest, CodeAfterRawStringOnSameLineStillChecked) {
  const char* fixture =
      "int F() { const char* s = R\"(x)\"; return rand(); }\n";
  EXPECT_TRUE(
      HasRule(LintSource("src/fake/raw3.cc", fixture), "raw-random", 1));
}

TEST(SuppressionTest, DirectiveInsideStringLiteralIsIgnored) {
  const char* fixture =
      "const char* k = \"ida-lint: allow(raw-random)\"; int s = rand();\n";
  EXPECT_TRUE(
      HasRule(LintSource("src/fake/strdir.cc", fixture), "raw-random", 1));
}

// ---------------------------------------------------------------------------
// lock-discipline (cross-file stage)
// ---------------------------------------------------------------------------

TEST(LockDisciplineTest, FlagsAccessWithoutLockAndAcceptsMutexLock) {
  const char* fixture =
      "class Box {\n"
      " public:\n"
      "  void Bump() { v_ += 1; }\n"
      "  int Get() {\n"
      "    MutexLock lock(&mu_);\n"
      "    return v_;\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int v_ IDA_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  auto findings = LintProjectOne("src/fake/box.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "lock-discipline", 3));
  EXPECT_FALSE(HasRule(findings, "lock-discipline", 6));
}

TEST(LockDisciplineTest, StdScopedAndGuardLocksCount) {
  const char* fixture =
      "class C {\n"
      " public:\n"
      "  void F() {\n"
      "    std::scoped_lock lock(mu_, aux_);\n"
      "    v_ += 1;\n"
      "  }\n"
      "  void G() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    v_ += 1;\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  Mutex aux_;\n"
      "  int v_ IDA_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(HasRule(LintProjectOne("src/fake/std.cc", fixture),
                       "lock-discipline"));
}

TEST(LockDisciplineTest, ManualLockAndUnlockAreTracked) {
  const char* fixture =
      "class C {\n"
      " public:\n"
      "  void F() {\n"
      "    mu_.lock();\n"
      "    v_ = 1;\n"
      "    mu_.unlock();\n"
      "    v_ = 2;\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int v_ IDA_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  auto findings = LintProjectOne("src/fake/manual.cc", fixture);
  EXPECT_FALSE(HasRule(findings, "lock-discipline", 5));
  EXPECT_TRUE(HasRule(findings, "lock-discipline", 7));
}

TEST(LockDisciplineTest, LambdaInheritsTheEnclosingScope) {
  const char* fixture =
      "class W {\n"
      " public:\n"
      "  void F() {\n"
      "    MutexLock lock(&mu_);\n"
      "    auto g = [&] { v_ += 1; };\n"
      "    g();\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int v_ IDA_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(HasRule(LintProjectOne("src/fake/lambda.cc", fixture),
                       "lock-discipline"));
}

TEST(LockDisciplineTest, QualifiedAccessThroughTypedVariable) {
  const char* fixture =
      "struct Shard {\n"
      "  Mutex mu;\n"
      "  int count IDA_GUARDED_BY(mu) = 0;\n"
      "};\n"
      "void Bad(Shard& shard) { shard.count += 1; }\n"
      "void Good(Shard& shard) {\n"
      "  MutexLock lock(&shard.mu);\n"
      "  shard.count += 1;\n"
      "}\n";
  auto findings = LintProjectOne("src/fake/shard.cc", fixture);
  EXPECT_TRUE(HasRule(findings, "lock-discipline", 5));
  EXPECT_FALSE(HasRule(findings, "lock-discipline", 8));
}

TEST(LockDisciplineTest, CrossFileRequiresAnnotationFromHeader) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile{
      "src/fake/w.h",
      "// fake/w.h — lock-discipline fixture.\n"
      "#pragma once\n"
      "/// A widget whose counter is mutex-guarded.\n"
      "class Widget {\n"
      " public:\n"
      "  void Refresh() IDA_REQUIRES(mu_);\n"
      "  void Broken();\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int n_ IDA_GUARDED_BY(mu_) = 0;\n"
      "};\n"});
  files.push_back(SourceFile{
      "src/fake/w.cc",
      "#include \"fake/w.h\"\n"
      "void Widget::Refresh() { n_ += 1; }\n"
      "void Widget::Broken() { n_ += 1; }\n"});
  auto findings = LintProjectSources(files, ProjectOptions{});
  EXPECT_FALSE(HasFinding(findings, "src/fake/w.cc", "lock-discipline", 2));
  EXPECT_TRUE(HasFinding(findings, "src/fake/w.cc", "lock-discipline", 3));
}

// ---------------------------------------------------------------------------
// layering (cross-file stage)
// ---------------------------------------------------------------------------

TEST(LayeringTest, AllowedAndForbiddenEdges) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile{"src/a/a.cc", "#include \"b/b.h\"\n"});
  files.push_back(SourceFile{"src/b/b.cc", "#include \"a/a.h\"\n"});
  auto findings = LintProjectSources(files, LayeredOptions("a: b\nb:\n"));
  EXPECT_FALSE(HasFinding(findings, "src/a/a.cc", "layering"));
  EXPECT_TRUE(HasFinding(findings, "src/b/b.cc", "layering", 1));
}

TEST(LayeringTest, SelfAndLocalIncludesAreAlwaysAllowed) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile{
      "src/a/x.cc", "#include \"a/y.h\"\n#include \"helpers.h\"\n"});
  EXPECT_TRUE(LintProjectSources(files, LayeredOptions("a:\n")).empty());
}

TEST(LayeringTest, CycleInTheTableIsReported) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile{"src/a/a.cc", "int x = 0;\n"});
  auto findings =
      LintProjectSources(files, LayeredOptions("a: b\nb: a\n"));
  ASSERT_TRUE(HasFinding(findings, "layering.txt", "layering"));
  bool cycle = false;
  for (const Finding& f : findings) {
    if (f.message.find("cycle") != std::string::npos) cycle = true;
  }
  EXPECT_TRUE(cycle);
}

TEST(LayeringTest, UndeclaredModuleIsReported) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile{"src/c/c.cc", "int x = 0;\n"});
  auto findings = LintProjectSources(files, LayeredOptions("a:\n"));
  EXPECT_TRUE(HasFinding(findings, "src/c/c.cc", "layering", 1));
}

TEST(LayeringTest, UnknownAllowedModuleIsReported) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile{"src/a/a.cc", "int x = 0;\n"});
  auto findings = LintProjectSources(files, LayeredOptions("a: ghost\n"));
  EXPECT_TRUE(HasFinding(findings, "layering.txt", "layering", 1));
}

// ---------------------------------------------------------------------------
// stale-suppression (cross-file stage)
// ---------------------------------------------------------------------------

TEST(SuppressionAuditTest, LiveDirectiveIsNotFlagged) {
  const char* fixture =
      "// ida-lint: allow(raw-random): generator comparison fixture\n"
      "int seed = rand();\n";
  EXPECT_TRUE(LintProjectOne("src/fake/live.cc", fixture).empty());
}

TEST(SuppressionAuditTest, StaleDirectiveIsFlagged) {
  const char* fixture =
      "// ida-lint: allow(raw-random): nothing left to suppress\n"
      "int seed = 0;\n";
  EXPECT_TRUE(HasFinding(LintProjectOne("src/fake/stale.cc", fixture),
                         "src/fake/stale.cc", "stale-suppression", 1));
}

TEST(SuppressionAuditTest, UnknownRuleIsFlagged) {
  const char* fixture =
      "int seed = rand();  // ida-lint: allow(bogus-rule)\n";
  EXPECT_TRUE(HasFinding(LintProjectOne("src/fake/bogus.cc", fixture),
                         "src/fake/bogus.cc", "stale-suppression", 1));
}

TEST(SuppressionAuditTest, PlaceholderRuleInProseIsExempt) {
  const char* fixture =
      "// Documentation example: ida-lint: allow(<rule>): why it is fine\n"
      "int x = 0;\n";
  EXPECT_TRUE(LintProjectOne("src/fake/prose.cc", fixture).empty());
}

TEST(SuppressionAuditTest, StaleFindingIsItselfSuppressible) {
  const char* fixture =
      "// ida-lint: allow(stale-suppression)\n"
      "// ida-lint: allow(raw-random): kept deliberately for the fixture\n"
      "int seed = 0;\n";
  EXPECT_TRUE(LintProjectOne("src/fake/meta.cc", fixture).empty());
}

// ---------------------------------------------------------------------------
// LintProject over a real (temporary) tree + JSON output
// ---------------------------------------------------------------------------

TEST(LintProjectTest, DiskTreeSmoke) {
  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() / "ida_lint_project_smoke";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "a");
  fs::create_directories(root / "src" / "b");
  {
    std::ofstream(root / "src" / "a" / "a.cc") << "#include \"b/b.h\"\n";
    std::ofstream(root / "src" / "b" / "b.h")
        << "// b.h — smoke fixture.\n#pragma once\n";
    std::ofstream(root / "layering.txt") << "a:\nb: a\n";
  }
  ProjectOptions options;
  options.src_root = (root / "src").generic_string();
  options.layering_path = (root / "layering.txt").generic_string();
  int files_scanned = 0;
  auto findings =
      LintProject({root / "src"}, options, &files_scanned);
  EXPECT_EQ(files_scanned, 2);
  EXPECT_TRUE(HasFinding(findings,
                         (root / "src" / "a" / "a.cc").generic_string(),
                         "layering", 1));
  fs::remove_all(root);
}

TEST(JsonOutputTest, CountsEveryRegisteredRuleAndEscapes) {
  std::vector<Finding> findings;
  findings.push_back(
      Finding{"src/fake/j.cc", 3, "float-eq", "say \"hi\"\n"});
  std::string json = FormatFindingsJson(findings, 5);
  EXPECT_NE(json.find("\"files_scanned\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"float-eq\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"unordered-iter\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"lock-discipline\": 0"), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos);
}

}  // namespace
}  // namespace ida::lint
