#include "eval/loocv.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ida {
namespace {

// A synthetic "two clusters, two labels" setup where distance perfectly
// separates the classes: LOOCV kNN must be near-perfect, Best-SM at the
// prevalence level.
struct Clustered {
  std::vector<TrainingSample> samples;
  std::vector<std::vector<double>> dist;
};

Clustered MakeClustered(size_t per_class, double separation, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  Clustered out;
  for (int cls = 0; cls < 2; ++cls) {
    for (size_t i = 0; i < per_class; ++i) {
      xs.push_back(cls * separation + rng.UniformReal(-0.02, 0.02));
      TrainingSample s;
      s.label = cls;
      s.labels = {cls};
      s.max_relative = rng.UniformReal(0.0, 1.0);
      out.samples.push_back(std::move(s));
    }
  }
  out.dist.assign(xs.size(), std::vector<double>(xs.size(), 0.0));
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < xs.size(); ++j) {
      out.dist[i][j] = std::fabs(xs[i] - xs[j]);
    }
  }
  return out;
}

TEST(LoocvTest, AllIndicesHelper) {
  EXPECT_EQ(AllIndices(3), (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(AllIndices(0).empty());
}

TEST(LoocvTest, FilterByTheta) {
  Clustered c = MakeClustered(10, 1.0, 3);
  auto some = FilterByTheta(c.samples, 0.5);
  EXPECT_LT(some.size(), c.samples.size());
  EXPECT_GT(some.size(), 0u);
  for (size_t i : some) EXPECT_GE(c.samples[i].max_relative, 0.5);
  EXPECT_EQ(FilterByTheta(c.samples, -1.0).size(), c.samples.size());
  EXPECT_TRUE(FilterByTheta(c.samples, 2.0).empty());
}

TEST(LoocvTest, KnnNearPerfectOnSeparableClusters) {
  Clustered c = MakeClustered(15, 1.0, 5);
  KnnOptions options;
  options.k = 3;
  options.distance_threshold = 0.5;
  EvalMetrics m = EvaluateKnnLoocv(c.samples, c.dist,
                                   AllIndices(c.samples.size()), options, 2);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
  EXPECT_GT(m.accuracy, 0.99);
  EXPECT_GT(m.macro_f1, 0.99);
}

TEST(LoocvTest, TightThresholdLowersCoverage) {
  Clustered c = MakeClustered(15, 1.0, 5);
  KnnOptions loose, tight;
  loose.k = tight.k = 3;
  loose.distance_threshold = 0.5;
  tight.distance_threshold = 1e-6;
  auto subset = AllIndices(c.samples.size());
  EvalMetrics ml = EvaluateKnnLoocv(c.samples, c.dist, subset, loose, 2);
  EvalMetrics mt = EvaluateKnnLoocv(c.samples, c.dist, subset, tight, 2);
  EXPECT_GT(ml.coverage, mt.coverage);
}

TEST(LoocvTest, SubsetRestrictsEvaluation) {
  Clustered c = MakeClustered(10, 1.0, 7);
  std::vector<size_t> subset = {0, 1, 2, 10, 11, 12};
  KnnOptions options;
  options.k = 1;
  options.distance_threshold = 0.5;
  EvalMetrics m = EvaluateKnnLoocv(c.samples, c.dist, subset, options, 2);
  EXPECT_EQ(m.total, subset.size());
  EXPECT_GT(m.accuracy, 0.99);
}

TEST(LoocvTest, BestSmMatchesPrevalence) {
  Clustered c = MakeClustered(10, 1.0, 9);
  // 10 of each class; add 5 extra of class 0 to break symmetry.
  for (int i = 0; i < 5; ++i) {
    TrainingSample s;
    s.label = 0;
    s.labels = {0};
    c.samples.push_back(s);
  }
  EvalMetrics m =
      EvaluateBestSmLoocv(c.samples, AllIndices(c.samples.size()), 2);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
  EXPECT_NEAR(m.accuracy, 15.0 / 25.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.macro_recall, 0.5);
}

TEST(LoocvTest, RandomNearChanceLevel) {
  Clustered c = MakeClustered(400, 1.0, 11);
  EvalMetrics m =
      EvaluateRandom(c.samples, AllIndices(c.samples.size()), 4, 13);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
  EXPECT_NEAR(m.accuracy, 0.25, 0.06);  // 4 classes, truth uses 2
}

TEST(LoocvTest, SvmKfoldSeparatesClusters) {
  Clustered c = MakeClustered(12, 2.0, 15);
  SvmOptions options;
  EvalMetrics m = EvaluateSvmKfold(c.samples, c.dist,
                                   AllIndices(c.samples.size()), options,
                                   /*folds=*/4, 2);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);  // SVM always predicts
  EXPECT_GT(m.accuracy, 0.9);
}

TEST(LoocvTest, SvmDegenerateSubset) {
  Clustered c = MakeClustered(2, 1.0, 17);
  SvmOptions options;
  EvalMetrics m = EvaluateSvmKfold(c.samples, c.dist, {0}, options, 4, 2);
  EXPECT_EQ(m.total, 0u);  // too small to fold
}

}  // namespace
}  // namespace ida
