#include "measures/measure.h"

#include <gtest/gtest.h>

#include <cmath>

#include "actions/executor.h"
#include "measures/conciseness.h"
#include "measures/dispersion.h"
#include "measures/diversity.h"
#include "measures/peculiarity.h"
#include "test_util.h"

namespace ida {
namespace {

using testing::MakeProfileDisplay;

TEST(MeasureRegistryTest, AllEightMeasures) {
  MeasureSet all = CreateAllMeasures();
  ASSERT_EQ(all.size(), 8u);
  int facet_counts[kNumFacets] = {0, 0, 0, 0};
  for (const auto& m : all) ++facet_counts[static_cast<int>(m->facet())];
  for (int f = 0; f < kNumFacets; ++f) EXPECT_EQ(facet_counts[f], 2);
}

TEST(MeasureRegistryTest, CreateByName) {
  for (const char* name : {"variance", "simpson", "schutz", "macarthur",
                           "osf", "deviation", "compaction_gain",
                           "log_length"}) {
    auto m = CreateMeasure(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->name(), name);
  }
  EXPECT_EQ(CreateMeasure("bogus"), nullptr);
}

TEST(MeasureRegistryTest, SixteenConfigurations) {
  auto configs = CreateMeasureConfigurations();
  ASSERT_EQ(configs.size(), 16u);
  for (const MeasureSet& I : configs) {
    ASSERT_EQ(I.size(), 4u);
    // One per facet, in facet order.
    for (int f = 0; f < kNumFacets; ++f) {
      EXPECT_EQ(static_cast<int>(I[static_cast<size_t>(f)]->facet()), f);
    }
  }
}

TEST(MeasureRegistryTest, MeasureIndex) {
  MeasureSet all = CreateAllMeasures();
  EXPECT_EQ(MeasureIndex(all, "variance"), 0);
  EXPECT_EQ(MeasureIndex(all, "log_length"), 7);
  EXPECT_EQ(MeasureIndex(all, "nope"), -1);
}

// ---------------------------------------------------------------- diversity

TEST(DiversityTest, SkewedBeatsUniform) {
  auto skewed = MakeProfileDisplay({97.0, 1.0, 1.0, 1.0});
  auto uniform = MakeProfileDisplay({25.0, 25.0, 25.0, 25.0});
  for (const char* name : {"variance", "simpson"}) {
    auto m = CreateMeasure(name);
    EXPECT_GT(m->Score(*skewed, nullptr), m->Score(*uniform, nullptr))
        << name;
  }
}

TEST(DiversityTest, SimpsonBounds) {
  SimpsonMeasure simpson;
  auto uniform = MakeProfileDisplay({10.0, 10.0, 10.0, 10.0});
  EXPECT_NEAR(simpson.Score(*uniform, nullptr), 0.25, 1e-12);  // 1/m
  auto one = MakeProfileDisplay({100.0});
  EXPECT_NEAR(simpson.Score(*one, nullptr), 1.0, 1e-12);
}

TEST(DiversityTest, VarianceZeroForUniformAndSingleton) {
  VarianceMeasure variance;
  auto uniform = MakeProfileDisplay({5.0, 5.0, 5.0});
  EXPECT_NEAR(variance.Score(*uniform, nullptr), 0.0, 1e-12);
  auto one = MakeProfileDisplay({9.0});
  EXPECT_DOUBLE_EQ(variance.Score(*one, nullptr), 0.0);
}

TEST(DiversityTest, VarianceHandComputed) {
  // p = (0.75, 0.25), qbar = 0.5: ((0.25)^2 + (0.25)^2) / 1 = 0.125.
  VarianceMeasure variance;
  auto d = MakeProfileDisplay({75.0, 25.0});
  EXPECT_NEAR(variance.Score(*d, nullptr), 0.125, 1e-12);
}

// --------------------------------------------------------------- dispersion

TEST(DispersionTest, UniformBeatsSkewed) {
  auto skewed = MakeProfileDisplay({97.0, 1.0, 1.0, 1.0});
  auto uniform = MakeProfileDisplay({25.0, 25.0, 25.0, 25.0});
  for (const char* name : {"schutz", "macarthur"}) {
    auto m = CreateMeasure(name);
    EXPECT_GT(m->Score(*uniform, nullptr), m->Score(*skewed, nullptr))
        << name;
  }
}

TEST(DispersionTest, UniformScoresOne) {
  auto uniform = MakeProfileDisplay({10.0, 10.0, 10.0, 10.0, 10.0});
  EXPECT_NEAR(CreateMeasure("schutz")->Score(*uniform, nullptr), 1.0, 1e-12);
  EXPECT_NEAR(CreateMeasure("macarthur")->Score(*uniform, nullptr), 1.0,
              1e-9);
}

TEST(DispersionTest, SchutzHandComputed) {
  // p = (0.75, 0.25): sum|p - 0.5| = 0.5; inequality 0.25 -> score 0.75.
  SchutzMeasure schutz;
  auto d = MakeProfileDisplay({75.0, 25.0});
  EXPECT_NEAR(schutz.Score(*d, nullptr), 0.75, 1e-12);
}

TEST(DispersionTest, BoundedInUnitInterval) {
  for (const char* name : {"schutz", "macarthur"}) {
    auto m = CreateMeasure(name);
    for (const auto& values :
         {std::vector<double>{1.0, 999.0}, {1.0, 1.0, 1.0},
          {0.5, 0.2, 0.3}, {100.0}}) {
      auto d = MakeProfileDisplay(values);
      double s = m->Score(*d, nullptr);
      EXPECT_GE(s, 0.0) << name;
      EXPECT_LE(s, 1.0) << name;
    }
  }
}

// -------------------------------------------------------------- peculiarity

TEST(OsfTest, OutlierRaisesScore) {
  OsfMeasure osf;
  auto with_outlier = MakeProfileDisplay({10.0, 11.0, 9.0, 10.0, 95.0});
  auto flat = MakeProfileDisplay({10.0, 11.0, 9.0, 10.0, 10.5});
  EXPECT_GT(osf.Score(*with_outlier, nullptr), osf.Score(*flat, nullptr));
}

TEST(OsfTest, ConstantVectorScoresZero) {
  OsfMeasure osf;
  auto flat = MakeProfileDisplay({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(osf.Score(*flat, nullptr), 0.0);
  auto single = MakeProfileDisplay({5.0});
  EXPECT_DOUBLE_EQ(osf.Score(*single, nullptr), 0.0);
}

TEST(OsfTest, ElementScoresIdentifyTheOutlier) {
  auto scores = OsfMeasure::ElementScores({10.0, 10.5, 9.5, 50.0, 10.0});
  size_t argmax = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 3u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(OsfTest, ScaleInvariance) {
  OsfMeasure osf;
  auto a = MakeProfileDisplay({1.0, 1.1, 0.9, 5.0});
  auto b = MakeProfileDisplay({100.0, 110.0, 90.0, 500.0});
  EXPECT_NEAR(osf.Score(*a, nullptr), osf.Score(*b, nullptr), 1e-9);
}

TEST(DeviationTest, MatchingReferenceScoresNearZero) {
  // Display whose distribution matches the root's distribution of the
  // same column.
  ActionExecutor exec;
  auto root = Display::MakeRoot(testing::PacketsTable());
  auto agg = exec.Execute(Action::GroupBy("protocol", AggFunc::kCount), *root);
  ASSERT_TRUE(agg.ok());
  DeviationMeasure dev;
  EXPECT_NEAR(dev.Score(**agg, root.get()), 0.0, 1e-6);
}

TEST(DeviationTest, FilteredDisplayDeviates) {
  ActionExecutor exec;
  auto root = Display::MakeRoot(testing::PacketsTable());
  // After-hours slice has a very different protocol mix than the root.
  auto filtered = exec.Execute(
      Action::Filter({{"hour", CompareOp::kGe, Value(int64_t{19})}}), *root);
  ASSERT_TRUE(filtered.ok());
  auto agg =
      exec.Execute(Action::GroupBy("protocol", AggFunc::kCount), **filtered);
  ASSERT_TRUE(agg.ok());
  DeviationMeasure dev;
  EXPECT_GT(dev.Score(**agg, root.get()), 0.5);
}

TEST(DeviationTest, NullRootFallsBackToUniformReference) {
  DeviationMeasure dev;
  auto skewed = MakeProfileDisplay({90.0, 5.0, 5.0});
  auto uniform = MakeProfileDisplay({10.0, 10.0, 10.0});
  EXPECT_GT(dev.Score(*skewed, nullptr), dev.Score(*uniform, nullptr));
  EXPECT_NEAR(dev.Score(*uniform, nullptr), 0.0, 1e-9);
}

// -------------------------------------------------------------- conciseness

TEST(CompactionGainTest, SummaryOfLargeDatasetScoresHigh) {
  CompactionGainMeasure cg;
  // Two groups summarizing a 150,908-tuple dataset: CG = 75,454 (paper
  // Example 2.1).
  auto d = MakeProfileDisplay({100.0, 50.0}, DisplayKind::kAggregated,
                              /*dataset_size=*/150908);
  EXPECT_NEAR(cg.Score(*d, nullptr), 75454.0, 1e-6);
}

TEST(CompactionGainTest, NarrowFilterScoresHigherThanFullListing) {
  ActionExecutor exec;
  auto root = Display::MakeRoot(testing::PacketsTable());
  auto narrow = exec.Execute(
      Action::Filter({{"protocol", CompareOp::kEq, Value("DNS")}}), *root);
  ASSERT_TRUE(narrow.ok());
  CompactionGainMeasure cg;
  EXPECT_DOUBLE_EQ(cg.Score(*root, nullptr), 1.0);        // 8/8
  EXPECT_DOUBLE_EQ(cg.Score(**narrow, nullptr), 4.0);     // 8/2
}

TEST(CompactionGainTest, FewerGroupsScoreHigher) {
  CompactionGainMeasure cg;
  auto two = MakeProfileDisplay({500.0, 500.0});
  auto ten = MakeProfileDisplay(std::vector<double>(10, 100.0));
  EXPECT_GT(cg.Score(*two, nullptr), cg.Score(*ten, nullptr));
}

TEST(LogLengthTest, MonotoneDecreasingInRows) {
  LogLengthMeasure ll;
  auto small = MakeProfileDisplay({1.0, 1.0});
  auto large = MakeProfileDisplay(std::vector<double>(200, 1.0));
  EXPECT_GT(ll.Score(*small, nullptr), ll.Score(*large, nullptr));
}

TEST(LogLengthTest, CapSaturatesAtZero) {
  LogLengthMeasure ll(/*cap=*/3.0);  // 2^3 - 1 = 7 rows saturate
  auto big = MakeProfileDisplay(std::vector<double>(64, 1.0));
  EXPECT_DOUBLE_EQ(ll.Score(*big, nullptr), 0.0);
}

TEST(LogLengthTest, BoundedInUnitInterval) {
  LogLengthMeasure ll;
  for (size_t rows : {1u, 5u, 100u, 10000u}) {
    auto d = MakeProfileDisplay(std::vector<double>(std::min<size_t>(rows, 64), 1.0),
                                DisplayKind::kAggregated, 1000, rows);
    double s = ll.Score(*d, nullptr);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

// ----------------------------------------------------- cross-facet behavior

// The paper's Example 2.1 in miniature: a skewed overview display vs a
// two-group compact summary. Diversity must favor the overview; dispersion
// and conciseness the summary.
TEST(CrossFacetTest, RunningExampleOrdering) {
  auto d1 = MakeProfileDisplay({48000.0, 1500.0, 400.0, 150.0, 80.0, 46.0});
  auto d3 = MakeProfileDisplay({80000.0, 70908.0});
  EXPECT_GT(CreateMeasure("variance")->Score(*d1, nullptr),
            CreateMeasure("variance")->Score(*d3, nullptr));
  EXPECT_GT(CreateMeasure("schutz")->Score(*d3, nullptr),
            CreateMeasure("schutz")->Score(*d1, nullptr));
  EXPECT_GT(CreateMeasure("compaction_gain")->Score(*d3, nullptr),
            CreateMeasure("compaction_gain")->Score(*d1, nullptr));
  EXPECT_GT(CreateMeasure("log_length")->Score(*d3, nullptr),
            CreateMeasure("log_length")->Score(*d1, nullptr));
}

// Scale invariance of probability-vector measures: multiplying all
// aggregate values by a constant must not change the score.
class ScaleInvarianceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ScaleInvarianceTest, ScoreUnchangedUnderScaling) {
  auto m = CreateMeasure(GetParam());
  ASSERT_NE(m, nullptr);
  std::vector<double> base = {5.0, 20.0, 1.0, 14.0};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(v * 37.5);
  auto a = MakeProfileDisplay(base);
  auto b = MakeProfileDisplay(scaled);
  EXPECT_NEAR(m->Score(*a, nullptr), m->Score(*b, nullptr), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ProbabilityMeasures, ScaleInvarianceTest,
                         ::testing::Values("variance", "simpson", "schutz",
                                           "macarthur", "osf"));

// Permutation invariance: group order must not matter.
class PermutationInvarianceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PermutationInvarianceTest, ScoreUnchangedUnderPermutation) {
  auto m = CreateMeasure(GetParam());
  ASSERT_NE(m, nullptr);
  auto a = MakeProfileDisplay({3.0, 9.0, 1.0, 7.0});
  auto b = MakeProfileDisplay({9.0, 7.0, 3.0, 1.0});
  EXPECT_NEAR(m->Score(*a, nullptr), m->Score(*b, nullptr), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllProfileMeasures, PermutationInvarianceTest,
                         ::testing::Values("variance", "simpson", "schutz",
                                           "macarthur", "osf",
                                           "compaction_gain", "log_length"));

// All measures must return finite scores on degenerate displays.
class RobustnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RobustnessTest, FiniteOnDegenerateInputs) {
  auto m = CreateMeasure(GetParam());
  ASSERT_NE(m, nullptr);
  auto root = Display::MakeRoot(testing::PacketsTable());
  for (const auto& values :
       {std::vector<double>{}, {1.0}, {0.0, 0.0}, {1e12, 1e-12}}) {
    auto d = MakeProfileDisplay(values);
    double s = m->Score(*d, root.get());
    EXPECT_TRUE(std::isfinite(s)) << m->name() << " on size " << values.size();
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, RobustnessTest,
                         ::testing::Values("variance", "simpson", "schutz",
                                           "macarthur", "osf", "deviation",
                                           "compaction_gain", "log_length"));

}  // namespace
}  // namespace ida
