#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ida {
namespace {

TrainingSample Truth(int label, std::vector<int> ties = {}) {
  TrainingSample s;
  s.label = label;
  s.labels = ties.empty() ? std::vector<int>{label} : std::move(ties);
  return s;
}

Prediction Pred(int label) {
  Prediction p;
  p.label = label;
  return p;
}

TEST(MetricsTest, PerfectPredictions) {
  MetricsAccumulator acc(3);
  for (int c = 0; c < 3; ++c) {
    acc.Add(Pred(c), Truth(c));
    acc.Add(Pred(c), Truth(c));
  }
  EvalMetrics m = acc.Finish();
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_recall, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
}

TEST(MetricsTest, AbstentionsAffectCoverageNotAccuracy) {
  MetricsAccumulator acc(2);
  acc.Add(Pred(0), Truth(0));
  acc.Add(Pred(-1), Truth(1));  // abstain
  acc.Add(Pred(-1), Truth(0));  // abstain
  EvalMetrics m = acc.Finish();
  EXPECT_DOUBLE_EQ(m.coverage, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_EQ(m.predicted, 1u);
  EXPECT_EQ(m.total, 3u);
}

TEST(MetricsTest, TiedTruthAcceptsAnyDominantLabel) {
  MetricsAccumulator acc(3);
  acc.Add(Pred(2), Truth(1, {1, 2}));  // tie: 2 counts as correct
  EvalMetrics m = acc.Finish();
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
}

TEST(MetricsTest, BestSmShape) {
  // Always predicting the majority class: macro-recall must equal
  // 1/num_classes and macro-precision the accuracy (paper Table 5's
  // Best-SM pattern).
  MetricsAccumulator acc(4);
  for (int i = 0; i < 40; ++i) acc.Add(Pred(0), Truth(0));
  for (int c = 1; c < 4; ++c) {
    for (int i = 0; i < 20; ++i) acc.Add(Pred(0), Truth(c));
  }
  EvalMetrics m = acc.Finish();
  EXPECT_DOUBLE_EQ(m.accuracy, 0.4);
  EXPECT_DOUBLE_EQ(m.macro_precision, 0.4);
  EXPECT_DOUBLE_EQ(m.macro_recall, 0.25);
}

TEST(MetricsTest, ConfusionAccounting) {
  MetricsAccumulator acc(2);
  acc.Add(Pred(0), Truth(0));  // TP for 0
  acc.Add(Pred(0), Truth(1));  // FP for 0, FN for 1
  acc.Add(Pred(1), Truth(1));  // TP for 1
  acc.Add(Pred(1), Truth(1));  // TP for 1
  EvalMetrics m = acc.Finish();
  // precision: class0 1/2, class1 2/2 -> 0.75; recall: class0 1/1,
  // class1 2/3 -> 5/6.
  EXPECT_DOUBLE_EQ(m.macro_precision, 0.75);
  EXPECT_NEAR(m.macro_recall, 5.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.75);
  double p = 0.75, r = 5.0 / 6.0;
  EXPECT_NEAR(m.macro_f1, 2 * p * r / (p + r), 1e-12);
}

TEST(MetricsTest, EmptyAccumulator) {
  MetricsAccumulator acc(4);
  EvalMetrics m = acc.Finish();
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.coverage, 0.0);
  EXPECT_EQ(m.total, 0u);
}

TEST(MetricsTest, ToStringMentionsEverything) {
  MetricsAccumulator acc(2);
  acc.Add(Pred(0), Truth(0));
  std::string s = acc.Finish().ToString();
  EXPECT_NE(s.find("acc="), std::string::npos);
  EXPECT_NE(s.find("coverage="), std::string::npos);
  EXPECT_NE(s.find("(1/1)"), std::string::npos);
}

}  // namespace
}  // namespace ida
