#include "session/ncontext.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace ida {
namespace {

// The paper's worked examples (Sec 3.2 / Example 3.3) on the running
// session: q1 from d0, q2 from d0 (after backtracking), q3 from d2.

TEST(NContextTest, PaperExampleStateS0) {
  SessionTree t = testing::ExampleSession();
  // "c_1 contains the single node d_0".
  NContext c = ExtractNContext(t, 0, 3);
  EXPECT_EQ(c.nodes().size(), 1u);
  EXPECT_EQ(c.size_elements(), 1u);
  EXPECT_EQ(c.node(c.root()).step, 0);
  EXPECT_EQ(c.focus(), c.root());
  EXPECT_FALSE(c.node(c.root()).incoming.has_value());
}

TEST(NContextTest, PaperExampleStateS1) {
  SessionTree t = testing::ExampleSession();
  // "c_2 contains d_0, q_1, d_1".
  NContext c = ExtractNContext(t, 1, 3);
  EXPECT_EQ(c.size_elements(), 3u);
  ASSERT_EQ(c.nodes().size(), 2u);
  EXPECT_EQ(c.node(c.root()).step, 0);
  EXPECT_EQ(c.node(c.focus()).step, 1);
  ASSERT_TRUE(c.node(c.focus()).incoming.has_value());
  EXPECT_EQ(c.node(c.focus()).incoming->group_column(), "protocol");
}

TEST(NContextTest, PaperExampleStateS2SkipsSiblingBranch) {
  SessionTree t = testing::ExampleSession();
  // "the 3-context at step t = 2 includes displays d_0 and d_2 and the
  // action q_2" — NOT d_1/q_1, which sit on the abandoned branch.
  NContext c = ExtractNContext(t, 2, 3);
  EXPECT_EQ(c.size_elements(), 3u);
  std::set<int> steps;
  for (const auto& n : c.nodes()) steps.insert(n.step);
  EXPECT_EQ(steps, (std::set<int>{0, 2}));
  ASSERT_TRUE(c.node(c.focus()).incoming.has_value());
  EXPECT_EQ(c.node(c.focus()).incoming->type(), ActionType::kFilter);
}

TEST(NContextTest, LargerContextPullsInEarlierBranch) {
  SessionTree t = testing::ExampleSession();
  // 5-context at t=2: after {d_2, q_2, d_0} the walk adds q_1 and d_1.
  NContext c = ExtractNContext(t, 2, 5);
  EXPECT_EQ(c.size_elements(), 5u);
  std::set<int> steps;
  for (const auto& n : c.nodes()) steps.insert(n.step);
  EXPECT_EQ(steps, (std::set<int>{0, 1, 2}));
}

TEST(NContextTest, FullSessionContext) {
  SessionTree t = testing::ExampleSession();
  // More than 2T+1 elements available -> whole tree (7 elements).
  NContext c = ExtractNContext(t, 3, 100);
  EXPECT_EQ(c.size_elements(), 7u);
  EXPECT_EQ(c.nodes().size(), 4u);
  EXPECT_EQ(c.node(c.focus()).step, 3);
  // Root has two children in step order.
  const NContextNode& root = c.node(c.root());
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_LT(c.node(root.children[0]).step, c.node(root.children[1]).step);
}

TEST(NContextTest, SizeOneIsJustTheFocusDisplay) {
  SessionTree t = testing::ExampleSession();
  NContext c = ExtractNContext(t, 3, 1);
  EXPECT_EQ(c.nodes().size(), 1u);
  EXPECT_EQ(c.node(0).step, 3);
}

TEST(NContextTest, ChainContextOnLinearSession) {
  ActionExecutor exec;
  SessionTree t("s", "u", "d", Display::MakeRoot(testing::PacketsTable()));
  int cur = 0;
  for (int i = 0; i < 4; ++i) {
    auto r = t.ApplyFrom(
        cur, Action::Filter({{"length", CompareOp::kGe, Value(int64_t{50 + i})}}),
        exec);
    ASSERT_TRUE(r.ok());
    cur = *r;
  }
  NContext c = ExtractNContext(t, 4, 5);
  EXPECT_EQ(c.size_elements(), 5u);
  std::set<int> steps;
  for (const auto& n : c.nodes()) steps.insert(n.step);
  EXPECT_EQ(steps, (std::set<int>{2, 3, 4}));
}

TEST(NContextTest, InvalidArgsYieldEmpty) {
  SessionTree t = testing::ExampleSession();
  EXPECT_TRUE(ExtractNContext(t, -1, 3).empty());
  EXPECT_TRUE(ExtractNContext(t, 99, 3).empty());
  EXPECT_TRUE(ExtractNContext(t, 1, 0).empty());
}

TEST(NContextTest, FingerprintStableAndDiscriminating) {
  SessionTree t = testing::ExampleSession();
  NContext a = ExtractNContext(t, 2, 3);
  NContext b = ExtractNContext(t, 2, 3);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  NContext c = ExtractNContext(t, 3, 3);
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_EQ(NContext().Fingerprint(), "()");
}

TEST(NContextTest, ParentChildIndicesConsistent) {
  SessionTree t = testing::ExampleSession();
  NContext c = ExtractNContext(t, 3, 100);
  for (size_t i = 0; i < c.nodes().size(); ++i) {
    const NContextNode& n = c.nodes()[i];
    if (n.parent >= 0) {
      const auto& siblings = c.node(n.parent).children;
      EXPECT_NE(std::find(siblings.begin(), siblings.end(),
                          static_cast<int>(i)),
                siblings.end());
    } else {
      EXPECT_EQ(static_cast<int>(i), c.root());
    }
  }
}

}  // namespace
}  // namespace ida
