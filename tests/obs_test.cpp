// Tests of the observability layer (DESIGN.md §10): concurrent counter
// and histogram correctness, deterministic snapshots and exports, stable
// registry handles, the runtime and compile-time off switches, the trace
// sink, and the engine integration (one Predict increments exactly the
// serving metric set it should).
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "synth/generator.h"

namespace ida {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
#if IDA_OBS_ENABLED
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kThreads * kPerThread));
#else
  EXPECT_EQ(counter->value(), 0u);  // compiled-out stub stays at zero
#endif
}

TEST(HistogramTest, BucketBoundsAreLeInclusive) {
  MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test.le", {1.0, 2.0, 4.0});
  h->Observe(0.5);  // -> le=1
  h->Observe(1.0);  // boundary: le=1, not le=2
  h->Observe(3.0);  // -> le=4
  h->Observe(9.0);  // -> overflow
  obs::HistogramSnapshot snap = h->Snapshot();
#if IDA_OBS_ENABLED
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 0u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 13.5);
#else
  EXPECT_EQ(snap.count, 0u);
#endif
}

TEST(HistogramTest, ConcurrentObservationsKeepInvariants) {
  MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("test.hist", obs::LinearBuckets(1.0, 1.0, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<double>((t + i) % 10));  // some overflow
      }
    });
  }
  for (std::thread& t : threads) t.join();
  obs::HistogramSnapshot snap = h->Snapshot();
#if IDA_OBS_ENABLED
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snap.count, total);
  uint64_t bucket_sum = 0;
  for (uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, total);  // every observation landed in one bucket
  EXPECT_GT(snap.sum, 0.0);
#else
  EXPECT_EQ(snap.count, 0u);
#endif
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  // Bounds apply on first registration only; the handle stays stable.
  obs::Histogram* h = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(registry.GetHistogram("h", {5.0}), h);
}

TEST(RegistryTest, SnapshotIsDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(3);
  registry.GetCounter("a.first")->Add(1);
  registry.GetGauge("m.middle")->Set(2.5);
  registry.GetHistogram("h.lat", {0.1, 0.2})->Observe(0.15);
  const std::string json1 = registry.Snapshot().ToJson();
  const std::string json2 = registry.Snapshot().ToJson();
  EXPECT_EQ(json1, json2);  // byte-identical across snapshot calls
#if IDA_OBS_ENABLED
  // Sections are sorted by name regardless of registration order.
  EXPECT_LT(json1.find("a.first"), json1.find("z.last"));
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "z.last");
#endif
}

TEST(RegistryTest, PrometheusExportShape) {
  MetricsRegistry registry;
  registry.GetCounter("ida.test.counter")->Add(7);
  registry.GetHistogram("ida.test.lat", {1.0, 2.0})->Observe(1.5);
  const std::string text = registry.Snapshot().ToPrometheus();
#if IDA_OBS_ENABLED
  // Dots map to underscores; histograms emit cumulative le buckets.
  EXPECT_NE(text.find("ida_test_counter 7"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE ida_test_counter counter"), std::string::npos);
  EXPECT_NE(text.find("ida_test_lat_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ida_test_lat_count 1"), std::string::npos);
#else
  EXPECT_TRUE(text.empty() || text.find("ida_test") == std::string::npos);
#endif
}

TEST(RegistryTest, ResetKeepsHandlesValid) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::Histogram* h = registry.GetHistogram("h", {1.0});
  c->Add(5);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(registry.GetCounter("c"), c);  // same handle after Reset
  c->Increment();
#if IDA_OBS_ENABLED
  EXPECT_EQ(c->value(), 1u);
  EXPECT_EQ(h->bounds().size(), 1u);  // bounds survive the reset
#endif
}

TEST(TraceTest, VectorSinkRecordsSpansInOrder) {
  obs::VectorTraceSink sink;
  obs::ObsConfig obs;
  obs.trace = &sink;
  {
    obs::ScopedTimer outer(obs, "outer");
    obs::ScopedTimer inner(obs, "inner");
    inner.Stop();
  }  // outer emitted at scope exit, after inner
  std::vector<obs::TraceSpan> spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_GE(spans[1].duration_seconds, spans[0].duration_seconds);
  sink.Clear();
  EXPECT_TRUE(sink.spans().empty());
}

TEST(TraceTest, DisabledConfigEmitsNothingAndStopReturnsZero) {
  obs::VectorTraceSink sink;
  obs::ObsConfig off = obs::DisabledObsConfig();
  off.trace = &sink;  // a sink alone must not re-enable tracing
  obs::ScopedTimer timer(off, "quiet");
  EXPECT_EQ(timer.Stop(), 0.0);
  EXPECT_TRUE(sink.spans().empty());
}

// -- Engine integration ------------------------------------------------

ModelConfig ObsTestConfig() {
  ModelConfig config = DefaultNormalizedConfig();
  config.n_context_size = 3;
  config.theta_interest = -100.0;  // keep every state
  config.knn.distance_threshold = 0.25;
  return config;
}

class ObsEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new SynthBenchmark(
        std::move(*GenerateBenchmark(SmallGeneratorOptions(33))));
    engine::Trainer trainer(ObsTestConfig(), obs::DisabledObsConfig());
    auto model = trainer.Fit(bench_->log, bench_->registry);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    ASSERT_GT(model->size(), 10u);
    model_ = new engine::TrainedModel(std::move(*model));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete bench_;
  }

  static SynthBenchmark* bench_;
  static engine::TrainedModel* model_;
};

SynthBenchmark* ObsEngineTest::bench_ = nullptr;
engine::TrainedModel* ObsEngineTest::model_ = nullptr;

TEST_F(ObsEngineTest, OnePredictIncrementsTheServingMetrics) {
  MetricsRegistry registry;
  obs::ObsConfig obs;
  obs.registry = &registry;
  auto served = engine::Predictor::Load(*model_, obs);
  ASSERT_TRUE(served.ok());
  Prediction p = served->Predict(model_->samples()[0].context);
#if IDA_OBS_ENABLED
  EXPECT_EQ(registry.GetCounter("ida.engine.predict.count")->value(), 1u);
  // The serving index prunes most exact TED evaluations, so the eval count
  // is a positive number no larger than the training set, and it must agree
  // with the index's own accounting of un-pruned candidates.
  const uint64_t evals =
      registry.GetCounter("ida.engine.predict.distance_evals")->value();
  EXPECT_GT(evals, 0u);
  EXPECT_LE(evals, model_->size());
  EXPECT_EQ(registry.GetCounter("ida.index.searches")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("ida.index.exact_teds")->value(), evals);
  EXPECT_GT(registry.GetCounter("ida.index.lb_pruned")->value() +
                registry.GetCounter("ida.index.triangle_pruned")->value() +
                registry.GetCounter("ida.index.subtree_pruned")->value(),
            0u);
  EXPECT_EQ(registry.GetHistogram("ida.engine.predict.seconds")->count(), 1u);
  // Every exact evaluation the index admitted went through the TED tally.
  EXPECT_GE(registry.GetCounter("ida.distance.ted.calls")->value(), evals);
  const uint64_t abstained =
      registry.GetCounter("ida.engine.predict.abstentions")->value();
  EXPECT_EQ(abstained, p.HasPrediction() ? 0u : 1u);
#else
  (void)p;
  EXPECT_TRUE(registry.Snapshot().ToJson().find("predict") ==
              std::string::npos);
#endif
}

TEST_F(ObsEngineTest, PredictTraceHasThePhaseSpans) {
  obs::VectorTraceSink sink;
  obs::ObsConfig obs;
  MetricsRegistry registry;
  obs.registry = &registry;
  obs.trace = &sink;
  auto served = engine::Predictor::Load(*model_, obs);
  ASSERT_TRUE(served.ok());
  served->Predict(model_->samples()[0].context);
  std::vector<obs::TraceSpan> spans = sink.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "predict.prepare");
  EXPECT_EQ(spans[1].name, "predict.distance");
  EXPECT_EQ(spans[2].name, "predict.vote");
  // Spans tile the query: each starts where the previous ended.
  EXPECT_DOUBLE_EQ(spans[1].start_seconds,
                   spans[0].start_seconds + spans[0].duration_seconds);
}

TEST_F(ObsEngineTest, RuntimeDisabledPredictRecordsNothing) {
  MetricsRegistry registry;
  obs::ObsConfig off = obs::DisabledObsConfig();
  off.registry = &registry;
  auto served = engine::Predictor::Load(*model_, off);
  ASSERT_TRUE(served.ok());
  served->Predict(model_->samples()[0].context);
  served->PredictBatch({model_->samples()[0].context});
  MetricsSnapshot snap = registry.Snapshot();
  for (const obs::CounterSnapshot& c : snap.counters) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    EXPECT_EQ(h.count, 0u) << h.name;
  }
}

TEST_F(ObsEngineTest, ObservedPredictionsMatchUnobservedOnes) {
  MetricsRegistry registry;
  obs::ObsConfig obs;
  obs.registry = &registry;
  auto plain = engine::Predictor::Load(*model_, obs::DisabledObsConfig());
  auto observed = engine::Predictor::Load(*model_, obs);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(observed.ok());
  for (size_t i = 0; i < 5 && i < model_->size(); ++i) {
    const NContext& q = model_->samples()[i].context;
    Prediction a = plain->Predict(q);
    Prediction b = observed->Predict(q);
    EXPECT_EQ(a.label, b.label);
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
  }
}

TEST_F(ObsEngineTest, FitAndLoocvRecordTheirMetrics) {
  MetricsRegistry registry;
  obs::ObsConfig obs;
  obs.registry = &registry;
  engine::Trainer trainer(ObsTestConfig(), obs);
  auto model = trainer.Fit(bench_->log, bench_->registry);
  ASSERT_TRUE(model.ok());
  auto eval = engine::EvaluateLoocv(*model, 17, obs);
  ASSERT_TRUE(eval.ok());
#if IDA_OBS_ENABLED
  EXPECT_EQ(registry.GetCounter("ida.engine.fit.count")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("ida.engine.fit.samples")->value(),
            model->size());
  EXPECT_EQ(registry.GetCounter("ida.engine.loocv.runs")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("ida.engine.fit.index_builds")->value(), 1u);
  // The indexed LOOCV path serves every held-out query off the model's
  // VP-tree instead of materializing a pairwise distance matrix.
  EXPECT_EQ(registry.GetCounter("ida.distance.matrix.builds")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("ida.index.searches")->value(), model->size());
  EXPECT_EQ(registry.GetHistogram("ida.engine.fit.seconds")->count(), 1u);
#endif
}

TEST_F(ObsEngineTest, MetricsJsonWriterRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("ida.test.write")->Add(11);
  const std::string path = "/tmp/ida_obs_test_metrics.json";
  ASSERT_TRUE(obs::WriteMetricsJson(path, &registry).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 12, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, registry.Snapshot().ToJson());
#if IDA_OBS_ENABLED
  EXPECT_NE(contents.find("\"ida.test.write\": 11"), std::string::npos)
      << contents;
#endif
  EXPECT_FALSE(obs::WriteMetricsJson("/nonexistent-dir/x.json").ok());
}

}  // namespace
}  // namespace ida
