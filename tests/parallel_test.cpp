// Tests for the fork-join thread pool: exact index coverage (every index
// visited exactly once regardless of thread count or chunk size), worker-id
// bounds, pool reuse across dispatches, and the serial fast path.
#include "common/parallel.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace ida {
namespace {

TEST(HardwareConcurrencyTest, AtLeastOne) {
  EXPECT_GE(HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, NumThreadsMatchesRequest) {
  EXPECT_EQ(ThreadPool(1).num_threads(), 1);
  EXPECT_EQ(ThreadPool(3).num_threads(), 3);
  EXPECT_EQ(ThreadPool(0).num_threads(), HardwareConcurrency());
  EXPECT_EQ(ThreadPool(-5).num_threads(), HardwareConcurrency());
}

// Every index in [0, n) must be claimed by exactly one chunk, with a valid
// worker id, for serial and parallel pools and for chunk sizes that do and
// do not divide n.
TEST(ThreadPoolTest, ParallelForCoversEachIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                     size_t{1000}}) {
      for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(n, chunk,
                         [&](size_t begin, size_t end, int worker) {
                           ASSERT_GE(worker, 0);
                           ASSERT_LT(worker, pool.num_threads());
                           ASSERT_LE(begin, end);
                           ASSERT_LE(end, n);
                           // Serial pools dispatch the whole range as one
                           // chunk; real pools never exceed the chunk size.
                           if (pool.num_threads() > 1) {
                             ASSERT_LE(end - begin, chunk);
                           }
                           for (size_t i = begin; i < end; ++i) {
                             hits[i].fetch_add(1);
                           }
                         });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "threads=" << threads << " n=" << n << " chunk=" << chunk
              << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossDispatches) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(100, 7, [&](size_t begin, size_t end, int) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 2000u);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  int calls = 0;
  pool.ParallelFor(10, 4, [&](size_t begin, size_t end, int worker) {
    EXPECT_EQ(worker, 0);
    (void)begin;
    (void)end;
    ++calls;
  });
  // Serial fast path dispatches the whole range as one chunk.
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ida
