// Randomized property sweeps across module boundaries: invariants that
// must hold for arbitrary generated data, actions and sessions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "actions/executor.h"
#include "distance/ted.h"
#include "measures/measure.h"
#include "offline/comparison.h"
#include "session/ncontext.h"
#include "synth/agent.h"
#include "synth/dataset.h"

namespace ida {
namespace {

// ------------------------------------------------------ executor invariants

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, FilterResultIsSubsetOfParent) {
  SynthDataset d = MakeScenarioDataset(ScenarioKind::kPortScan, 400,
                                       GetParam());
  auto root = Display::MakeRoot(d.table);
  ActionExecutor exec;
  Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    // A random single-predicate filter built from an actual cell value.
    size_t col = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(d.table->num_columns()) - 1));
    size_t row = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(d.table->num_rows()) - 1));
    Value v = d.table->GetValue(row, col);
    if (v.is_null()) continue;
    Action a = Action::Filter(
        {Predicate{d.table->schema().field(col).name, CompareOp::kEq, v}});
    auto r = exec.Execute(a, *root);
    ASSERT_TRUE(r.ok());
    EXPECT_LE((*r)->num_rows(), root->num_rows());
    EXPECT_GE((*r)->num_rows(), 1u);  // the witness row matches itself
    // Filter is idempotent: applying it again changes nothing.
    auto rr = exec.Execute(a, **r);
    ASSERT_TRUE(rr.ok());
    EXPECT_EQ((*rr)->num_rows(), (*r)->num_rows());
  }
}

TEST_P(ExecutorPropertyTest, GroupByCoversAllParentTuples) {
  SynthDataset d = MakeScenarioDataset(ScenarioKind::kDataExfil, 300,
                                       GetParam());
  auto root = Display::MakeRoot(d.table);
  ActionExecutor exec;
  for (const char* col : {"protocol", "src_ip", "dst_ip", "flags", "hour"}) {
    auto r = exec.Execute(Action::GroupBy(col, AggFunc::kCount), *root);
    ASSERT_TRUE(r.ok()) << col;
    const InterestProfile& p = (*r)->profile();
    EXPECT_DOUBLE_EQ(p.covered_tuples(), 300.0) << col;
    // Counts equal group sizes for kCount.
    for (size_t j = 0; j < p.group_count(); ++j) {
      EXPECT_DOUBLE_EQ(p.values[j], p.group_sizes[j]);
    }
    // Sum aggregate must total the column sum.
    auto sum = exec.Execute(Action::GroupBy(col, AggFunc::kSum, "length"),
                            *root);
    ASSERT_TRUE(sum.ok());
    double total = 0.0;
    for (double v : (*sum)->profile().values) total += v;
    auto lc = d.table->ColumnByName("length");
    double expect = 0.0;
    for (size_t i = 0; i < lc->size(); ++i) expect += lc->GetNumeric(i);
    EXPECT_NEAR(total, expect, 1e-6) << col;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ----------------------------------------------- session / context sweeps

class SessionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionPropertyTest, NContextInvariants) {
  SynthDataset d =
      MakeScenarioDataset(ScenarioKind::kLateralMovement, 500, GetParam());
  AgentProfile profile;
  profile.min_steps = 5;
  profile.max_steps = 9;
  AnalystAgent agent(&d, profile, GetParam() * 7 + 3);
  ActionExecutor exec;
  auto tree = agent.RunSession("s", "u", exec);
  ASSERT_TRUE(tree.ok());

  for (int t = 0; t <= tree->num_steps(); ++t) {
    for (int n = 1; n <= 11; n += 2) {
      NContext c = ExtractNContext(*tree, t, n);
      ASSERT_FALSE(c.empty());
      // Size bounds: at least min(n, 2t+1); overshoot past n is possible
      // (adding one more edge may pull in a whole connecting path), but a
      // context can never exceed the elements that exist up to step t.
      size_t available = static_cast<size_t>(2 * t + 1);
      EXPECT_GE(c.size_elements(),
                std::min<size_t>(static_cast<size_t>(n), available));
      EXPECT_LE(c.size_elements(), available);
      // Focus node is d_t; root has no incoming action.
      EXPECT_EQ(c.node(c.focus()).step, t);
      EXPECT_FALSE(c.node(c.root()).incoming.has_value());
      // Every non-root node carries its incoming action.
      for (size_t i = 0; i < c.nodes().size(); ++i) {
        if (static_cast<int>(i) != c.root()) {
          EXPECT_TRUE(c.nodes()[i].incoming.has_value());
        }
      }
      // Monotone: a larger n never yields a smaller context.
      if (n > 1) {
        NContext smaller = ExtractNContext(*tree, t, n - 2);
        EXPECT_LE(smaller.size_elements(), c.size_elements());
      }
    }
  }
}

TEST_P(SessionPropertyTest, DistanceCacheIsTransparent) {
  SynthDataset d =
      MakeScenarioDataset(ScenarioKind::kMalwareBeacon, 400, GetParam());
  AgentProfile profile;
  profile.min_steps = 6;
  profile.max_steps = 8;
  AnalystAgent agent(&d, profile, GetParam() + 77);
  ActionExecutor exec;
  auto tree = agent.RunSession("s", "u", exec);
  ASSERT_TRUE(tree.ok());
  std::vector<NContext> contexts;
  for (int t = 0; t <= tree->num_steps(); ++t) {
    contexts.push_back(ExtractNContext(*tree, t, 5));
  }
  SessionDistance warm;  // reused across pairs: cache fills up
  // The shared cache only admits displays declared to outlive the metric.
  for (const NContext& c : contexts) {
    for (const auto& node : c.nodes()) warm.MarkStable(node.display.get());
  }
  for (size_t i = 0; i < contexts.size(); ++i) {
    for (size_t j = 0; j < contexts.size(); ++j) {
      SessionDistance cold;  // fresh metric: no cache reuse
      EXPECT_NEAR(warm.Distance(contexts[i], contexts[j]),
                  cold.Distance(contexts[i], contexts[j]), 1e-12);
    }
  }
  EXPECT_GT(warm.cache_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionPropertyTest,
                         ::testing::Values(11, 22, 33));

// ----------------------------------------------------- comparison sweeps

TEST(ComparisonPropertyTest, SubsetProjectionConsistent) {
  // For any full result, the projected dominant measure must be the
  // measure with the maximal relative score among the projected indices.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    ComparisonResult full;
    for (int m = 0; m < 8; ++m) {
      full.raw_scores.push_back(rng.UniformReal(0, 10));
      full.relative_scores.push_back(rng.UniformReal(-2.5, 2.5));
    }
    FillDominant(&full);
    std::vector<int> indices;
    for (int m = 0; m < 8; ++m) {
      if (rng.Bernoulli(0.5)) indices.push_back(m);
    }
    if (indices.empty()) continue;
    ComparisonResult sub = SubsetResult(full, indices);
    ASSERT_FALSE(sub.dominant.empty());
    double best = -1e300;
    for (int idx : indices) {
      best = std::max(best, full.relative_scores[static_cast<size_t>(idx)]);
    }
    EXPECT_DOUBLE_EQ(sub.max_relative, best);
    for (int d : sub.dominant) {
      EXPECT_DOUBLE_EQ(sub.relative_scores[static_cast<size_t>(d)], best);
    }
  }
}

TEST(ComparisonPropertyTest, ReferenceBasedRelativeScoresAreMidRanks) {
  // With k alternatives, every relative score must be a multiple of
  // 0.5/k within [0, 1].
  SynthDataset d = MakeScenarioDataset(ScenarioKind::kPortScan, 300, 3);
  auto root = Display::MakeRoot(d.table);
  ActionExecutor exec;
  Action q = Action::GroupBy("protocol", AggFunc::kCount);
  auto display = exec.Execute(q, *root);
  ASSERT_TRUE(display.ok());
  std::vector<Action> reference = {
      Action::GroupBy("flags", AggFunc::kCount),
      Action::GroupBy("src_ip", AggFunc::kCount),
      Action::GroupBy("hour", AggFunc::kCount),
      Action::GroupBy("dst_ip", AggFunc::kCount),
  };
  MeasureSet I = CreateAllMeasures();
  ReferenceBasedComparison cmp(I);
  auto result = cmp.Compare(q, *root, **display, root.get(), reference);
  ASSERT_TRUE(result.ok());
  double k = static_cast<double>(result->effective_reference_size);
  ASSERT_GT(k, 0.0);
  for (double r : result->relative_scores) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    double scaled = r * k * 2.0;  // multiples of 0.5/k
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
  }
}

// ------------------------------------------------------- measure sweeps

class MeasureMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(MeasureMonotonicityTest, SimpsonIncreasesWithConcentration) {
  // Moving mass from the smallest to the largest group can only raise
  // Simpson (and lower Schutz dispersion).
  int m = GetParam();
  std::vector<double> values(static_cast<size_t>(m), 10.0);
  MeasurePtr simpson = CreateMeasure("simpson");
  MeasurePtr schutz = CreateMeasure("schutz");
  double prev_simpson = -1.0;
  double prev_schutz = 2.0;
  for (int shift = 0; shift < 5; ++shift) {
    InterestProfile p;
    p.column = "c";
    TableBuilder b({"c", "v"});
    for (size_t j = 0; j < values.size(); ++j) {
      p.labels.push_back(std::to_string(j));
      p.values.push_back(values[j]);
      p.group_sizes.push_back(values[j]);
      Status st = b.AppendRow({Value(std::to_string(j)), Value(values[j])});
      (void)st;
    }
    auto table = b.Finish();
    Display d(DisplayKind::kAggregated, *table, std::move(p), 1000);
    double s = simpson->Score(d, nullptr);
    double z = schutz->Score(d, nullptr);
    EXPECT_GE(s, prev_simpson - 1e-12);
    EXPECT_LE(z, prev_schutz + 1e-12);
    prev_simpson = s;
    prev_schutz = z;
    values[0] += 8.0;  // concentrate
    values.back() = std::max(1.0, values.back() - 8.0);
  }
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, MeasureMonotonicityTest,
                         ::testing::Values(3, 5, 9, 17));

}  // namespace
}  // namespace ida
