// Tests of the record→replay load harness (obs/capture.h +
// src/replay/): percentile helper exactness (values, n=1, interpolation
// edges), IDATRACE round-trip and corruption rejection, synthesized-trace
// well-formedness, capture→replay→recapture equivalence through a live
// SessionManager, and the bitwise-determinism contract of ReplayTrace
// across runs and worker counts.
#include "replay/replay.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/binio.h"
#include "engine/engine.h"
#include "obs/capture.h"
#include "replay/stats.h"
#include "serve/session_manager.h"
#include "synth/generator.h"

namespace ida {
namespace {

using obs::CaptureKind;
using obs::CaptureRecord;
using obs::Trace;
using obs::TraceWorld;

// ---------------------------------------------------------------------------
// Percentile helpers (replay/stats.h)

TEST(PercentileTest, ExactValuesOnSortedSample) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  // numpy-style linear interpolation at rank p * (n - 1).
  EXPECT_DOUBLE_EQ(replay::Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(replay::Percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(replay::Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(replay::Percentile(v, 0.25), 17.5);
  EXPECT_DOUBLE_EQ(replay::Median(v), 25.0);
}

TEST(PercentileTest, SingleElementAndEmpty) {
  const std::vector<double> one = {7.25};
  for (double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(replay::Percentile(one, p), 7.25);
  }
  EXPECT_DOUBLE_EQ(replay::Percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, InterpolationAndClampEdges) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(replay::Percentile(v, 0.75), 1.75);
  // Out-of-range p clamps to the extremes.
  EXPECT_DOUBLE_EQ(replay::Percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(replay::Percentile(v, 1.5), 2.0);
  // p99 over 101 evenly spaced values lands exactly on element 99.
  std::vector<double> hundred;
  for (int i = 0; i <= 100; ++i) hundred.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(replay::Percentile(hundred, 0.99), 99.0);
}

TEST(PercentileTest, SummarizeSortsAndAggregates) {
  // Unsorted on purpose: Summarize must sort its own copy.
  const replay::LatencySummary s =
      replay::Summarize({3.0, 1.0, 4.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_GT(s.p99, s.p95 - 1e-12);
}

// ---------------------------------------------------------------------------
// IDATRACE serialization (obs/capture.h)

Trace SampleTrace() {
  Trace trace;
  trace.world = TraceWorld{3, 17, 250, 99};
  CaptureRecord open;
  open.kind = CaptureKind::kOpen;
  open.arrival_us = 1000;
  open.session_id = "s-0";
  open.payload = "flights";
  CaptureRecord append;
  append.kind = CaptureKind::kAppend;
  append.arrival_us = 2500;
  append.session_id = "s-0";
  append.step = 1;
  append.parent = 0;
  append.payload = "filter col=3 op=eq";
  CaptureRecord advise;
  advise.kind = CaptureKind::kAdvise;
  advise.arrival_us = 2500;
  advise.session_id = "s-0";
  advise.step = 1;
  advise.context_digest = 0xDEADBEEFCAFEF00Dull;
  advise.label = 5;
  advise.confidence = 0.625;
  CaptureRecord close;
  close.kind = CaptureKind::kClose;
  close.arrival_us = 9000;
  close.session_id = "s-0";
  close.step = 1;
  trace.records = {open, append, advise, close};
  return trace;
}

TEST(CaptureTraceTest, SerializeParseRoundTrip) {
  const Trace trace = SampleTrace();
  const std::string bytes = obs::SerializeTrace(trace);
  // Deterministic serialization: equal input, equal bytes.
  EXPECT_EQ(bytes, obs::SerializeTrace(trace));

  auto parsed = obs::ParseTrace(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->world.has_value());
  EXPECT_EQ(parsed->world->num_users, 3u);
  EXPECT_EQ(parsed->world->num_sessions, 17u);
  EXPECT_EQ(parsed->world->rows_per_dataset, 250u);
  EXPECT_EQ(parsed->world->seed, 99u);
  ASSERT_EQ(parsed->records.size(), trace.records.size());
  for (size_t i = 0; i < trace.records.size(); ++i) {
    const CaptureRecord& a = trace.records[i];
    const CaptureRecord& b = parsed->records[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.arrival_us, b.arrival_us) << i;
    EXPECT_EQ(a.session_id, b.session_id) << i;
    EXPECT_EQ(a.step, b.step) << i;
    EXPECT_EQ(a.parent, b.parent) << i;
    EXPECT_EQ(a.context_digest, b.context_digest) << i;
    EXPECT_EQ(a.label, b.label) << i;
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence) << i;
    EXPECT_EQ(a.payload, b.payload) << i;
  }
}

TEST(CaptureTraceTest, WorldlessTraceRoundTrips) {
  Trace trace;
  trace.records = {CaptureRecord{}};
  auto parsed = obs::ParseTrace(obs::SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->world.has_value());
  ASSERT_EQ(parsed->records.size(), 1u);
}

// Rewrites the trailing checksum so byte-level tampering tests reach the
// decoder instead of tripping the checksum gate.
void FixChecksum(std::string* bytes) {
  const size_t header = 8 + 4, footer = 8;
  const uint64_t sum =
      binio::Fnv1a(bytes->data() + header, bytes->size() - header - footer);
  std::memcpy(bytes->data() + bytes->size() - footer, &sum, sizeof(sum));
}

TEST(CaptureTraceTest, RejectsCorruption) {
  const std::string good = obs::SerializeTrace(SampleTrace());

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(obs::ParseTrace(bad_magic).ok());

  EXPECT_FALSE(obs::ParseTrace(good.substr(0, good.size() / 2)).ok());
  EXPECT_FALSE(obs::ParseTrace("").ok());

  std::string flipped = good;
  flipped[good.size() / 2] = static_cast<char>(flipped[good.size() / 2] ^ 0x5A);
  EXPECT_FALSE(obs::ParseTrace(flipped).ok());

  // First record's kind byte: header(12) + world flag(1) + world(20) +
  // count(4). An out-of-range kind must be rejected even when the
  // checksum is consistent with the tampered payload.
  std::string bad_kind = good;
  bad_kind[12 + 1 + 20 + 4] = 0x7F;
  FixChecksum(&bad_kind);
  EXPECT_FALSE(obs::ParseTrace(bad_kind).ok());

  std::string bad_version = good;
  bad_version[8] = 9;
  FixChecksum(&bad_version);  // version sits outside the checksum; no-op fix
  EXPECT_FALSE(obs::ParseTrace(bad_version).ok());
}

TEST(CaptureTraceTest, FileRoundTripAndRecorderFlush) {
  const std::string path = ::testing::TempDir() + "/replay_test.trace";
  {
    obs::TraceRecorder recorder(path);  // flushes on destruction
    recorder.SetWorld(TraceWorld{1, 2, 3, 4});
    CaptureRecord r;
    r.session_id = "flush-me";
    recorder.Record(r);
    EXPECT_EQ(recorder.size(), 1u);
  }
  auto parsed = obs::ReadTraceFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0].session_id, "flush-me");
  ASSERT_TRUE(parsed->world.has_value());
  EXPECT_EQ(parsed->world->seed, 4u);
  std::remove(path.c_str());
  EXPECT_FALSE(obs::ReadTraceFile(path).ok());
}

// ---------------------------------------------------------------------------
// Replay engine (src/replay/) against a real model + manager

ModelConfig ReplayTestConfig() {
  ModelConfig config = DefaultNormalizedConfig();
  config.n_context_size = 3;
  config.theta_interest = -100.0;  // keep every state: dense training set
  config.knn.distance_threshold = 0.25;
  config.use_index = true;
  return config;
}

class ReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new GeneratorOptions(SmallGeneratorOptions(7));
    bench_ = new SynthBenchmark(std::move(*GenerateBenchmark(*world_)));
    engine::Trainer trainer(ReplayTestConfig());
    auto model = trainer.Fit(bench_->log, bench_->registry);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    auto loaded = engine::Predictor::Load(std::move(*model));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    predictor_ = new std::shared_ptr<const engine::Predictor>(
        std::make_shared<const engine::Predictor>(std::move(*loaded)));

    replay::SyntheticTraceOptions opt;
    opt.num_sessions = 12;
    opt.max_steps = 6;
    opt.seed = 11;
    auto trace = replay::SynthesizeTrace(*bench_, *world_, opt);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    trace_ = new Trace(std::move(*trace));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete predictor_;
    delete bench_;
    delete world_;
  }

  static replay::ReplayReport Run(const replay::ReplayOptions& options) {
    serve::SessionManager manager(*predictor_);
    auto report =
        replay::ReplayTrace(manager, bench_->registry, *trace_, options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  }

  static GeneratorOptions* world_;
  static SynthBenchmark* bench_;
  static std::shared_ptr<const engine::Predictor>* predictor_;
  static Trace* trace_;
};

GeneratorOptions* ReplayTest::world_ = nullptr;
SynthBenchmark* ReplayTest::bench_ = nullptr;
std::shared_ptr<const engine::Predictor>* ReplayTest::predictor_ = nullptr;
Trace* ReplayTest::trace_ = nullptr;

TEST_F(ReplayTest, SynthesizedTraceIsWellFormed) {
  ASSERT_TRUE(trace_->world.has_value());
  EXPECT_EQ(trace_->world->seed, world_->seed);
  ASSERT_FALSE(trace_->records.empty());

  size_t opens = 0, appends = 0, advises = 0, closes = 0;
  uint64_t last_arrival = 0;
  for (const CaptureRecord& r : trace_->records) {
    EXPECT_GE(r.arrival_us, last_arrival);  // sorted open-loop timeline
    last_arrival = r.arrival_us;
    switch (r.kind) {
      case CaptureKind::kOpen:
        ++opens;
        EXPECT_FALSE(r.payload.empty());  // dataset id
        break;
      case CaptureKind::kAppend:
        ++appends;
        EXPECT_FALSE(r.payload.empty());  // serialized action
        EXPECT_GE(r.parent, 0);
        break;
      case CaptureKind::kAdvise:
        ++advises;
        break;
      case CaptureKind::kClose:
        ++closes;
        break;
      case CaptureKind::kPredict:
        ADD_FAILURE() << "synthesized traces carry no kPredict records";
        break;
    }
  }
  EXPECT_EQ(opens, 12u);
  EXPECT_EQ(closes, 12u);
  EXPECT_GT(appends, 0u);
  EXPECT_EQ(appends, advises);  // one Advise per appended step
}

TEST_F(ReplayTest, ReplayExecutesEveryEventWithoutErrors) {
  replay::ReplayOptions options;
  options.workers = 2;
  options.speed = 0.0;  // unthrottled
  const replay::ReplayReport report = Run(options);
  EXPECT_EQ(report.events, trace_->records.size());
  EXPECT_EQ(report.executed, trace_->records.size());
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.opens, 12u);
  EXPECT_EQ(report.closes, 12u);
  EXPECT_EQ(report.predictions.size(), report.advises);
  EXPECT_EQ(report.advise_service.count, report.advises);
  EXPECT_EQ(report.advise_total.count, report.advises);
  EXPECT_GT(report.throughput_events_per_sec, 0.0);
  EXPECT_GT(report.advise_qps, 0.0);
  EXPECT_GE(report.advise_service.max, report.advise_service.p99);
  EXPECT_GE(report.advise_service.p99, report.advise_service.p50);
}

bool SamePredictions(const std::vector<Prediction>& a,
                     const std::vector<Prediction>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ca = 0, cb = 0;
    std::memcpy(&ca, &a[i].confidence, sizeof(ca));
    std::memcpy(&cb, &b[i].confidence, sizeof(cb));
    if (a[i].label != b[i].label || ca != cb) return false;
  }
  return true;
}

TEST_F(ReplayTest, PredictionsAreBitwiseDeterministic) {
  replay::ReplayOptions one;
  one.workers = 1;
  one.speed = 0.0;
  replay::ReplayOptions three = one;
  three.workers = 3;

  const replay::ReplayReport a = Run(one);
  const replay::ReplayReport b = Run(one);   // same options, fresh manager
  const replay::ReplayReport c = Run(three); // different parallelism
  ASSERT_EQ(a.errors, 0u);
  ASSERT_EQ(b.errors, 0u);
  ASSERT_EQ(c.errors, 0u);
  ASSERT_FALSE(a.predictions.empty());
  EXPECT_TRUE(SamePredictions(a.predictions, b.predictions));
  EXPECT_TRUE(SamePredictions(a.predictions, c.predictions));
  // The workload must exercise real answers, not wall-to-wall abstention.
  size_t answered = 0;
  for (const Prediction& p : a.predictions) answered += p.label >= 0 ? 1 : 0;
  EXPECT_GT(answered, 0u);
}

TEST_F(ReplayTest, PoissonResamplingValidatesRate) {
  replay::ReplayOptions options;
  options.speed = 0.0;
  options.arrivals = replay::ArrivalMode::kPoisson;
  options.poisson_rate = 0.0;
  serve::SessionManager manager(*predictor_);
  auto report =
      replay::ReplayTrace(manager, bench_->registry, *trace_, options);
  EXPECT_FALSE(report.ok());
}

TEST_F(ReplayTest, EmptyTraceIsInvalid) {
  serve::SessionManager manager(*predictor_);
  auto report = replay::ReplayTrace(manager, bench_->registry, Trace{},
                                    replay::ReplayOptions{});
  EXPECT_FALSE(report.ok());
}

// Capture→replay→recapture: replaying the synthesized trace through a
// capture-enabled manager must re-produce the same lifecycle sequence,
// with live n-context digests and the advisor's answers filled in. Two
// recaptures must agree exactly (ContextDigest and the capture hooks are
// deterministic).
TEST_F(ReplayTest, RecaptureMatchesReplayedTrace) {
  auto recapture = [&]() {
    obs::TraceRecorder recorder;
    obs::ObsConfig obs;
    obs.capture = &recorder;
    serve::SessionManager manager(*predictor_, serve::ServeOptions{}, obs);
    replay::ReplayOptions options;
    options.workers = 1;  // strict trace order end to end
    options.speed = 0.0;
    auto report =
        replay::ReplayTrace(manager, bench_->registry, *trace_, options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->errors, 0u);
    return recorder.Snapshot();
  };

  const Trace a = recapture();
  const Trace b = recapture();
  ASSERT_EQ(a.records.size(), trace_->records.size());
  ASSERT_EQ(b.records.size(), a.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const CaptureRecord& orig = trace_->records[i];
    const CaptureRecord& rec = a.records[i];
    EXPECT_EQ(rec.kind, orig.kind) << i;
    EXPECT_EQ(rec.session_id, orig.session_id) << i;
    EXPECT_EQ(rec.step, orig.step) << i;
    if (orig.kind == CaptureKind::kOpen || orig.kind == CaptureKind::kAppend) {
      EXPECT_EQ(rec.payload, orig.payload) << i;
    }
    // The live capture fills in what the synthesizer could not know.
    EXPECT_NE(rec.context_digest, 0u) << i;
    EXPECT_EQ(rec.context_digest, b.records[i].context_digest) << i;
    EXPECT_EQ(rec.label, b.records[i].label) << i;
  }
}

}  // namespace
}  // namespace ida
