#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace ida {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntRespectssBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformRealRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 3.0, 0.0};
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 20000.0, 0.75, 0.03);
}

TEST(RngTest, CategoricalAllZeroIsUniform) {
  Rng rng(11);
  std::vector<double> w = {0.0, 0.0};
  std::map<size_t, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_GT(counts[0], 1500);
  EXPECT_GT(counts[1], 1500);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(13);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], 3 * counts[9]);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace ida
