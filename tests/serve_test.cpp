// Tests of the stateful advisor service (serve/session_manager.h):
// Advise/AdviseBatch bitwise-identical to the one-shot predictor on both
// the brute-force and indexed paths, session lifecycle error semantics,
// LRU eviction under a capacity bound, hot-reload epoch semantics (failed
// reloads change nothing; successful ones flip every shard), `ida.serve.*`
// metric recording, and a TSan-checked concurrent Append/Advise/reload mix.
#include "serve/session_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "synth/generator.h"

namespace ida {
namespace {

ModelConfig ServeTestConfig(bool use_index) {
  ModelConfig config = DefaultNormalizedConfig();
  config.n_context_size = 3;
  config.theta_interest = -100.0;  // keep every state: dense training set
  config.knn.distance_threshold = 0.25;
  config.use_index = use_index;
  return config;
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new SynthBenchmark(
        std::move(*GenerateBenchmark(SmallGeneratorOptions(33))));
    for (bool use_index : {false, true}) {
      engine::Trainer trainer(ServeTestConfig(use_index));
      auto model = trainer.Fit(bench_->log, bench_->registry);
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      ASSERT_GT(model->size(), 20u);
      (use_index ? indexed_model_ : brute_model_) =
          new engine::TrainedModel(std::move(*model));
    }
  }
  static void TearDownTestSuite() {
    delete brute_model_;
    delete indexed_model_;
    delete bench_;
  }

  static std::shared_ptr<const engine::Predictor> LoadPredictor(
      const engine::TrainedModel& model) {
    auto p = engine::Predictor::Load(model);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::make_shared<const engine::Predictor>(std::move(*p));
  }

  /// Replays `record` through `manager` (session id `sid`), checking the
  /// advice after every append against PredictState on a mirror tree.
  static void ReplayAndCheck(serve::SessionManager& manager,
                             const engine::Predictor& oracle,
                             const SessionRecord& record,
                             const std::string& sid) {
    auto table = bench_->registry.find(record.dataset_id);
    ASSERT_NE(table, bench_->registry.end());
    ASSERT_TRUE(manager.Open(sid, Display::MakeRoot(table->second)).ok());
    ActionExecutor exec;
    SessionTree mirror(sid, record.user_id, record.dataset_id,
                       Display::MakeRoot(table->second));
    // State S_0 first: Open-then-Advise with no appends.
    auto p0 = manager.Advise(sid);
    ASSERT_TRUE(p0.ok());
    Prediction q0 = oracle.PredictState(mirror, 0);
    EXPECT_EQ(p0->label, q0.label);
    // ida-lint: allow(float-eq): bitwise equivalence is the contract
    EXPECT_EQ(p0->confidence, q0.confidence);
    for (size_t i = 0; i < record.steps.size(); ++i) {
      auto node = manager.Append(sid, record.steps[i].first,
                                 record.steps[i].second);
      if (!node.ok()) break;  // replay failure: skip the rest, not a bug here
      ASSERT_TRUE(mirror
                      .ApplyFrom(record.steps[i].first, record.steps[i].second,
                                 exec)
                      .ok());
      auto p = manager.Advise(sid);
      ASSERT_TRUE(p.ok());
      Prediction q = oracle.PredictState(mirror, mirror.num_steps());
      EXPECT_EQ(p->label, q.label) << sid << " step " << i;
      // ida-lint: allow(float-eq): bitwise equivalence is the contract
      EXPECT_EQ(p->confidence, q.confidence) << sid << " step " << i;
    }
    EXPECT_TRUE(manager.Close(sid).ok());
  }

  static SynthBenchmark* bench_;
  static engine::TrainedModel* brute_model_;
  static engine::TrainedModel* indexed_model_;
};

SynthBenchmark* ServeTest::bench_ = nullptr;
engine::TrainedModel* ServeTest::brute_model_ = nullptr;
engine::TrainedModel* ServeTest::indexed_model_ = nullptr;

TEST_F(ServeTest, AdviseMatchesOneShotBruteForce) {
  serve::SessionManager manager(LoadPredictor(*brute_model_));
  auto oracle = LoadPredictor(*brute_model_);
  for (size_t i = 0; i < 4 && i < bench_->log.size(); ++i) {
    ReplayAndCheck(manager, *oracle, bench_->log.records()[i],
                   "brute-" + std::to_string(i));
  }
}

TEST_F(ServeTest, AdviseMatchesOneShotIndexed) {
  serve::SessionManager manager(LoadPredictor(*indexed_model_));
  auto oracle = LoadPredictor(*indexed_model_);
  for (size_t i = 0; i < 4 && i < bench_->log.size(); ++i) {
    ReplayAndCheck(manager, *oracle, bench_->log.records()[i],
                   "indexed-" + std::to_string(i));
  }
}

// The indexed and brute services must agree with each other, session for
// session (the index is a pure accelerator).
TEST_F(ServeTest, IndexedServiceMatchesBruteService) {
  serve::SessionManager brute(LoadPredictor(*brute_model_));
  serve::SessionManager indexed(LoadPredictor(*indexed_model_));
  const SessionRecord& r = bench_->log.records()[0];
  auto table = bench_->registry.find(r.dataset_id);
  ASSERT_TRUE(brute.Open("s", Display::MakeRoot(table->second)).ok());
  ASSERT_TRUE(indexed.Open("s", Display::MakeRoot(table->second)).ok());
  for (const auto& [parent, action] : r.steps) {
    auto nb = brute.Append("s", parent, action);
    auto ni = indexed.Append("s", parent, action);
    ASSERT_EQ(nb.ok(), ni.ok());
    if (!nb.ok()) break;
    auto pb = brute.Advise("s");
    auto pi = indexed.Advise("s");
    ASSERT_TRUE(pb.ok());
    ASSERT_TRUE(pi.ok());
    EXPECT_EQ(pb->label, pi->label);
    // ida-lint: allow(float-eq): bitwise equivalence is the contract
    EXPECT_EQ(pb->confidence, pi->confidence);
  }
}

TEST_F(ServeTest, AdviseBatchMatchesIndividualAdvise) {
  serve::SessionManager manager(LoadPredictor(*indexed_model_));
  std::vector<std::string> ids;
  for (size_t i = 0; i < 6 && i < bench_->log.size(); ++i) {
    const SessionRecord& r = bench_->log.records()[i];
    const std::string sid = "batch-" + std::to_string(i);
    auto table = bench_->registry.find(r.dataset_id);
    ASSERT_TRUE(manager.Open(sid, Display::MakeRoot(table->second)).ok());
    // Grow each session a different number of steps for variety.
    for (size_t s = 0; s < r.steps.size() && s <= i; ++s) {
      if (!manager.Append(sid, r.steps[s].first, r.steps[s].second).ok()) {
        break;
      }
    }
    ids.push_back(sid);
  }
  std::vector<Prediction> individual;
  for (const std::string& sid : ids) {
    auto p = manager.Advise(sid);
    ASSERT_TRUE(p.ok());
    individual.push_back(*p);
  }
  auto batch = manager.AdviseBatch(ids);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*batch)[i].label, individual[i].label) << ids[i];
    // ida-lint: allow(float-eq): bitwise equivalence is the contract
    EXPECT_EQ((*batch)[i].confidence, individual[i].confidence) << ids[i];
  }
  // A missing id fails the whole batch with NotFound.
  ids.push_back("never-opened");
  auto bad = manager.AdviseBatch(ids);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(ServeTest, LifecycleErrorSemantics) {
  serve::SessionManager manager(LoadPredictor(*brute_model_));
  const SessionRecord& r = bench_->log.records()[0];
  auto table = bench_->registry.find(r.dataset_id);
  EXPECT_EQ(manager.Open("s", nullptr).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(manager.Open("s", Display::MakeRoot(table->second)).ok());
  EXPECT_EQ(manager.Open("s", Display::MakeRoot(table->second)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.Advise("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Append("ghost", 0, r.steps[0].second).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager.Close("ghost").code(), StatusCode::kNotFound);
  EXPECT_TRUE(manager.Close("s").ok());
  EXPECT_EQ(manager.Close("s").code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.live_sessions(), 0u);
  // An invalid parent id surfaces the tree's error, session stays live.
  ASSERT_TRUE(manager.Open("s2", Display::MakeRoot(table->second)).ok());
  EXPECT_FALSE(manager.Append("s2", 99, r.steps[0].second).ok());
  EXPECT_TRUE(manager.Advise("s2").ok());
}

TEST_F(ServeTest, LruEvictionUnderCapacity) {
  serve::ServeOptions options;
  options.num_shards = 1;  // deterministic victim order
  options.max_live_sessions = 3;
  serve::SessionManager manager(LoadPredictor(*brute_model_), options);
  const SessionRecord& r = bench_->log.records()[0];
  auto table = bench_->registry.find(r.dataset_id);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager
                    .Open("s" + std::to_string(i),
                          Display::MakeRoot(table->second))
                    .ok());
  }
  // Touch s0 so s1 becomes the least recently used.
  ASSERT_TRUE(manager.Advise("s0").ok());
  ASSERT_TRUE(manager.Open("s3", Display::MakeRoot(table->second)).ok());
  EXPECT_EQ(manager.live_sessions(), 3u);
  EXPECT_EQ(manager.Info().evictions, 1u);
  // The evicted session is gone; the touched one survived.
  EXPECT_EQ(manager.Advise("s1").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(manager.Advise("s0").ok());
  EXPECT_TRUE(manager.Advise("s2").ok());
  EXPECT_TRUE(manager.Advise("s3").ok());
}

TEST_F(ServeTest, HotReloadEpochSemantics) {
  serve::SessionManager manager(LoadPredictor(*brute_model_));
  EXPECT_EQ(manager.epoch(), 1u);
  const SessionRecord& r = bench_->log.records()[0];
  auto table = bench_->registry.find(r.dataset_id);
  ASSERT_TRUE(manager.Open("s", Display::MakeRoot(table->second)).ok());
  for (const auto& [parent, action] : r.steps) {
    if (!manager.Append("s", parent, action).ok()) break;
  }
  // A reload from a nonexistent artifact fails and changes nothing.
  EXPECT_FALSE(manager.ReloadFromFile("/nonexistent/model.idamodel").ok());
  EXPECT_EQ(manager.epoch(), 1u);
  auto before = manager.Advise("s");
  ASSERT_TRUE(before.ok());
  // Swap in the indexed model: epoch bumps, the open session keeps its
  // state, and advice now comes from the new predictor — which here must
  // agree bitwise (index is a pure accelerator over the same training set).
  ASSERT_TRUE(manager.Reload(*indexed_model_).ok());
  EXPECT_EQ(manager.epoch(), 2u);
  auto after = manager.Advise("s");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->label, before->label);
  // ida-lint: allow(float-eq): bitwise equivalence is the contract
  EXPECT_EQ(after->confidence, before->confidence);
  // A reload that changes n invalidates the maintained contexts: the next
  // Advise re-extracts under the new n and must equal the one-shot answer.
  ModelConfig wide = ServeTestConfig(false);
  wide.n_context_size = 5;
  auto wide_model = engine::Trainer(wide).Fit(bench_->log, bench_->registry);
  ASSERT_TRUE(wide_model.ok());
  ASSERT_TRUE(manager.Reload(*wide_model).ok());
  EXPECT_EQ(manager.epoch(), 3u);
  auto wide_oracle = engine::Predictor::Load(*wide_model);
  ASSERT_TRUE(wide_oracle.ok());
  ActionExecutor exec;
  SessionTree mirror("s", r.user_id, r.dataset_id,
                     Display::MakeRoot(table->second));
  for (const auto& [parent, action] : r.steps) {
    if (!mirror.ApplyFrom(parent, action, exec).ok()) break;
  }
  auto wide_p = manager.Advise("s");
  ASSERT_TRUE(wide_p.ok());
  Prediction wide_q = wide_oracle->PredictState(mirror, mirror.num_steps());
  EXPECT_EQ(wide_p->label, wide_q.label);
  // ida-lint: allow(float-eq): bitwise equivalence is the contract
  EXPECT_EQ(wide_p->confidence, wide_q.confidence);
}

TEST_F(ServeTest, ServeMetricsAreRecorded) {
  obs::MetricsRegistry registry;
  obs::ObsConfig obs;
  obs.registry = &registry;
  serve::ServeOptions options;
  options.num_shards = 2;
  serve::SessionManager manager(LoadPredictor(*brute_model_), options, obs);
  const SessionRecord& r = bench_->log.records()[0];
  auto table = bench_->registry.find(r.dataset_id);
  ASSERT_TRUE(manager.Open("a", Display::MakeRoot(table->second)).ok());
  ASSERT_TRUE(manager.Open("b", Display::MakeRoot(table->second)).ok());
  ASSERT_TRUE(manager.Append("a", 0, r.steps[0].second).ok());
  ASSERT_TRUE(manager.Advise("a").ok());
  ASSERT_TRUE(manager.AdviseBatch({"a", "b"}).ok());
  ASSERT_TRUE(manager.Reload(*indexed_model_).ok());
  ASSERT_TRUE(manager.Close("b").ok());
  const std::string json = registry.Snapshot().ToJson();
#if !IDA_OBS_ENABLED
  // Compiled-out stubs record nothing; the calls above still exercise the
  // serving paths with an ObsConfig attached.
  EXPECT_EQ(json.find("ida.serve.opens"), std::string::npos) << json;
#else
  EXPECT_NE(json.find("\"ida.serve.opens\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ida.serve.appends\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ida.serve.advises\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"ida.serve.batch_calls\""), std::string::npos);
  EXPECT_NE(json.find("\"ida.serve.batch_queries\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ida.serve.reloads\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ida.serve.closes\": 1"), std::string::npos);
  EXPECT_NE(json.find("ida.serve.live_sessions"), std::string::npos);
  EXPECT_NE(json.find("ida.serve.advise_seconds"), std::string::npos);
  EXPECT_NE(json.find("ida.serve.append_seconds"), std::string::npos);
#endif
}

// The TSan target (ctest -R Concurrent / CI thread-sanitizer job): many
// threads appending and advising their own sessions, a reload thread
// swapping models underneath, and a roaming batch thread. Assertions are
// deliberately light — the point is a data-race-free interleaving.
TEST_F(ServeTest, ConcurrentAppendAdviseReload) {
  serve::ServeOptions options;
  options.num_shards = 4;
  serve::SessionManager manager(LoadPredictor(*brute_model_), options);
  constexpr int kWorkers = 4;
  std::vector<std::string> ids;
  for (int w = 0; w < kWorkers; ++w) {
    ids.push_back("w" + std::to_string(w));
  }
  for (int w = 0; w < kWorkers; ++w) {
    const SessionRecord& r =
        bench_->log.records()[static_cast<size_t>(w) % bench_->log.size()];
    auto table = bench_->registry.find(r.dataset_id);
    ASSERT_TRUE(manager.Open(ids[static_cast<size_t>(w)],
                             Display::MakeRoot(table->second))
                    .ok());
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      const SessionRecord& r =
          bench_->log.records()[static_cast<size_t>(w) % bench_->log.size()];
      const std::string& sid = ids[static_cast<size_t>(w)];
      for (const auto& [parent, action] : r.steps) {
        if (!manager.Append(sid, parent, action).ok()) break;
        auto p = manager.Advise(sid);
        EXPECT_TRUE(p.ok());
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(
          manager.Reload(i % 2 == 0 ? *indexed_model_ : *brute_model_).ok());
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      auto batch = manager.AdviseBatch(ids);
      EXPECT_TRUE(batch.ok());
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(manager.epoch(), 7u);
  EXPECT_EQ(manager.live_sessions(), static_cast<size_t>(kWorkers));
}

}  // namespace
}  // namespace ida

