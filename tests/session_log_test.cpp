#include "session/log.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "test_util.h"

namespace ida {
namespace {

SessionRecord ExampleRecord() {
  SessionRecord r;
  r.session_id = "example";
  r.user_id = "clarice";
  r.dataset_id = "packets";
  r.successful = true;
  r.steps = {
      {0, Action::GroupBy("protocol", AggFunc::kCount)},
      {0, Action::Filter({{"protocol", CompareOp::kEq, Value("HTTP")},
                          {"hour", CompareOp::kGe, Value(int64_t{19})}})},
      {2, Action::GroupBy("dst_ip", AggFunc::kCount)},
  };
  return r;
}

TEST(SessionLogTest, Counters) {
  SessionLog log;
  log.Add(ExampleRecord());
  SessionRecord failed = ExampleRecord();
  failed.session_id = "other";
  failed.successful = false;
  failed.steps.pop_back();
  log.Add(failed);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_actions(), 5u);
  EXPECT_EQ(log.successful_sessions(), 1u);
  EXPECT_EQ(log.successful_actions(), 3u);
}

TEST(SessionLogTest, SerializeParseRoundTrip) {
  SessionLog log;
  log.Add(ExampleRecord());
  std::string text = log.Serialize();
  auto back = SessionLog::Parse(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 1u);
  const SessionRecord& r = back->records()[0];
  EXPECT_EQ(r.session_id, "example");
  EXPECT_EQ(r.user_id, "clarice");
  EXPECT_EQ(r.dataset_id, "packets");
  EXPECT_TRUE(r.successful);
  ASSERT_EQ(r.steps.size(), 3u);
  EXPECT_EQ(r.steps[1].first, 0);
  EXPECT_TRUE(r.steps[1].second == ExampleRecord().steps[1].second);
  EXPECT_EQ(r.steps[2].first, 2);
}

TEST(SessionLogTest, ParseSkipsCommentsAndBlanks) {
  auto log = SessionLog::Parse(
      "# header comment\n\nSESSION s u d 0\nSTEP 0 GROUPBY a AGG count\n"
      "END\n");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 1u);
}

TEST(SessionLogTest, ParseErrors) {
  EXPECT_FALSE(SessionLog::Parse("SESSION a b\nEND\n").ok());
  EXPECT_FALSE(SessionLog::Parse("STEP 0 BACK\n").ok());  // outside SESSION
  EXPECT_FALSE(SessionLog::Parse("SESSION s u d 0\nSTEP 0 BACK\nEND\n").ok());
  EXPECT_FALSE(SessionLog::Parse("SESSION s u d 0\nSTEP 9 GROUPBY a AGG "
                                 "count\nEND\n")
                   .ok());  // parent out of range
  EXPECT_FALSE(SessionLog::Parse("SESSION s u d 0\n").ok());  // unterminated
  EXPECT_FALSE(SessionLog::Parse("END\n").ok());
  EXPECT_FALSE(
      SessionLog::Parse("SESSION s u d 0\nSTEP x GROUPBY a AGG count\nEND\n")
          .ok());
  EXPECT_FALSE(SessionLog::Parse("GARBAGE\n").ok());
  EXPECT_FALSE(
      SessionLog::Parse("SESSION a b c 1\nSESSION d e f 0\nEND\n").ok());
}

TEST(SessionLogTest, FileRoundTrip) {
  SessionLog log;
  log.Add(ExampleRecord());
  std::string path = ::testing::TempDir() + "/session_log_test.log";
  ASSERT_TRUE(log.SaveToFile(path).ok());
  auto back = SessionLog::LoadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Serialize(), log.Serialize());
  std::remove(path.c_str());
}

TEST(ReplayTest, RebuildsFullTree) {
  DatasetRegistry registry;
  registry["packets"] = testing::PacketsTable();
  ActionExecutor exec;
  auto tree = ReplaySession(ExampleRecord(), registry, exec);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->num_steps(), 3);
  EXPECT_TRUE(tree->successful());
  EXPECT_EQ(tree->node(2).parent, 0);
  EXPECT_EQ(tree->node(3).parent, 2);
  // Displays materialized with correct contents.
  EXPECT_EQ(tree->node(1).display->profile().group_count(), 4u);
  EXPECT_EQ(tree->node(2).display->num_rows(), 3u);
}

TEST(ReplayTest, MissingDatasetErrors) {
  DatasetRegistry registry;
  ActionExecutor exec;
  auto tree = ReplaySession(ExampleRecord(), registry, exec);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kNotFound);
}

TEST(ReplayTest, ReplayMatchesOriginalTree) {
  // A tree built live and the replay of its record are structurally equal.
  SessionTree original = testing::ExampleSession();
  SessionRecord record;
  record.session_id = original.session_id();
  record.user_id = original.user_id();
  record.dataset_id = original.dataset_id();
  record.successful = original.successful();
  for (const SessionStep& s : original.steps()) {
    record.steps.emplace_back(s.parent, s.action);
  }
  DatasetRegistry registry;
  registry["packets"] = testing::PacketsTable();
  ActionExecutor exec;
  auto replayed = ReplaySession(record, registry, exec);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->num_nodes(), original.num_nodes());
  for (int i = 0; i < original.num_nodes(); ++i) {
    EXPECT_EQ(replayed->node(i).parent, original.node(i).parent);
    EXPECT_EQ(replayed->node(i).display->num_rows(),
              original.node(i).display->num_rows());
  }
}

TEST(ReplayAllTest, CountsFailures) {
  SessionLog log;
  log.Add(ExampleRecord());
  SessionRecord bad = ExampleRecord();
  bad.session_id = "bad";
  bad.dataset_id = "missing";
  log.Add(bad);
  DatasetRegistry registry;
  registry["packets"] = testing::PacketsTable();
  ActionExecutor exec;
  size_t consumed = 0, failed = 0;
  ASSERT_TRUE(ReplayAll(log, registry, exec,
                        [&](const SessionTree&) { ++consumed; }, &failed)
                  .ok());
  EXPECT_EQ(consumed, 1u);
  EXPECT_EQ(failed, 1u);
}

}  // namespace
}  // namespace ida
