#include "session/tree.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ida {
namespace {

TEST(SessionTreeTest, RootOnly) {
  SessionTree t("s", "u", "d", Display::MakeRoot(testing::PacketsTable()));
  EXPECT_EQ(t.num_steps(), 0);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.node(0).parent, -1);
  EXPECT_EQ(t.session_id(), "s");
  EXPECT_FALSE(t.successful());
}

TEST(SessionTreeTest, LinearGrowth) {
  ActionExecutor exec;
  SessionTree t("s", "u", "d", Display::MakeRoot(testing::PacketsTable()));
  auto n1 = t.ApplyFrom(0, Action::GroupBy("protocol", AggFunc::kCount), exec);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(*n1, 1);
  auto n2 = t.ApplyFrom(
      *n1, Action::Filter({{"count", CompareOp::kGe, Value(int64_t{2})}}),
      exec);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 2);
  EXPECT_EQ(t.num_steps(), 2);
  EXPECT_EQ(t.node(2).parent, 1);
  EXPECT_EQ(t.node(1).children, std::vector<int>{2});
  EXPECT_EQ(t.step(2).parent, 1);
}

TEST(SessionTreeTest, BacktrackingBranches) {
  SessionTree t = testing::ExampleSession();
  // q1 from root, q2 from root (backtracked), q3 from node 2.
  EXPECT_EQ(t.num_steps(), 3);
  EXPECT_EQ(t.node(1).parent, 0);
  EXPECT_EQ(t.node(2).parent, 0);
  EXPECT_EQ(t.node(3).parent, 2);
  EXPECT_EQ(t.node(0).children, (std::vector<int>{1, 2}));
}

TEST(SessionTreeTest, RejectsBadParent) {
  ActionExecutor exec;
  SessionTree t("s", "u", "d", Display::MakeRoot(testing::PacketsTable()));
  EXPECT_FALSE(
      t.ApplyFrom(5, Action::GroupBy("protocol", AggFunc::kCount), exec).ok());
  EXPECT_FALSE(
      t.ApplyFrom(-1, Action::GroupBy("protocol", AggFunc::kCount), exec)
          .ok());
}

TEST(SessionTreeTest, RejectsBackAction) {
  ActionExecutor exec;
  SessionTree t("s", "u", "d", Display::MakeRoot(testing::PacketsTable()));
  EXPECT_FALSE(t.ApplyFrom(0, Action::Back(), exec).ok());
}

TEST(SessionTreeTest, FailedActionLeavesTreeUnchanged) {
  ActionExecutor exec;
  SessionTree t("s", "u", "d", Display::MakeRoot(testing::PacketsTable()));
  auto r = t.ApplyFrom(0, Action::GroupBy("missing", AggFunc::kCount), exec);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.num_steps(), 0);
  EXPECT_TRUE(t.node(0).children.empty());
}

TEST(SessionTreeTest, NodeIdsMatchStepNumbers) {
  SessionTree t = testing::ExampleSession();
  for (int s = 1; s <= t.num_steps(); ++s) {
    EXPECT_EQ(t.step(s).node, s);
    EXPECT_EQ(&t.NodeOfStep(s), &t.node(s));
  }
}

}  // namespace
}  // namespace ida
