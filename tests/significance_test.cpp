#include "stats/significance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ida {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);          // Gamma(1)=1
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);          // Gamma(2)=1
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);  // Gamma(5)=24
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-9);
}

TEST(RegularizedGammaTest, ComplementaryPair) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 50.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // For a=1, P(1,x) = 1 - exp(-x).
  for (double x : {0.2, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(ChiSquareSurvivalTest, KnownQuantiles) {
  // Classic table values: P(X >= 3.841 | 1 dof) = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1), 0.05, 0.001);
  // P(X >= 5.991 | 2 dof) = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(5.991, 2), 0.05, 0.001);
  // P(X >= 16.919 | 9 dof) = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(16.919, 9), 0.05, 0.001);
  // Median of chi-square(2) is 2 ln 2.
  EXPECT_NEAR(ChiSquareSurvival(2.0 * std::log(2.0), 2), 0.5, 1e-9);
}

TEST(ChiSquareIndependenceTest, PerfectIndependence) {
  // Rows proportional to columns -> statistic 0, p-value 1.
  ChiSquareResult r = ChiSquareIndependence({{10, 20}, {20, 40}});
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.dof, 1.0);
}

TEST(ChiSquareIndependenceTest, StrongAssociation) {
  ChiSquareResult r = ChiSquareIndependence({{100, 0}, {0, 100}});
  EXPECT_NEAR(r.statistic, 200.0, 1e-9);
  EXPECT_LT(r.p_value, 1e-40);
}

TEST(ChiSquareIndependenceTest, HandComputedTwoByTwo) {
  // Observed {{10,20},{30,40}}: chi2 = 100*(10*40-20*30)^2 /
  // (30*70*40*60) = 0.7936...
  ChiSquareResult r = ChiSquareIndependence({{10, 20}, {30, 40}});
  EXPECT_NEAR(r.statistic, 0.79365, 1e-4);
  EXPECT_NEAR(r.p_value, 0.3729, 1e-3);
}

TEST(ChiSquareIndependenceTest, DropsZeroMarginals) {
  // Middle column is all-zero; effective table is 2x2.
  ChiSquareResult r = ChiSquareIndependence({{10, 0, 20}, {20, 0, 40}});
  EXPECT_DOUBLE_EQ(r.dof, 1.0);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
}

TEST(ChiSquareIndependenceTest, DegenerateTables) {
  EXPECT_DOUBLE_EQ(ChiSquareIndependence({}).p_value, 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareIndependence({{5, 5}}).p_value, 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareIndependence({{5}, {5}}).p_value, 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareIndependence({{0, 0}, {0, 0}}).p_value, 1.0);
  // Ragged input rejected.
  EXPECT_DOUBLE_EQ(ChiSquareIndependence({{1, 2}, {3}}).p_value, 1.0);
}

TEST(ChiSquareIndependenceTest, FourByFourDiagonal) {
  // A strongly diagonal 4x4 table (like two agreeing labeling methods)
  // must come out overwhelmingly dependent — the paper reports
  // p < 1e-67 for its two comparison methods.
  std::vector<std::vector<double>> diag(4, std::vector<double>(4, 2.0));
  for (int i = 0; i < 4; ++i) diag[i][i] = 150.0;
  ChiSquareResult r = ChiSquareIndependence(diag);
  EXPECT_DOUBLE_EQ(r.dof, 9.0);
  EXPECT_LT(r.p_value, 1e-60);
}

}  // namespace
}  // namespace ida
