#include "eval/skyline.h"

#include <gtest/gtest.h>

namespace ida {
namespace {

TEST(SkylineTest, Empty) {
  EXPECT_TRUE(ParetoSkyline({}).empty());
}

TEST(SkylineTest, SinglePoint) {
  EXPECT_EQ(ParetoSkyline({{0.5, 0.5}}), (std::vector<size_t>{0}));
}

TEST(SkylineTest, DominatedPointsRemoved) {
  // (0.5, 0.5) is dominated by (0.6, 0.7).
  std::vector<std::pair<double, double>> pts = {
      {0.5, 0.5}, {0.6, 0.7}, {0.9, 0.3}};
  auto sky = ParetoSkyline(pts);
  EXPECT_EQ(sky, (std::vector<size_t>{1, 2}));
}

TEST(SkylineTest, MonotoneFrontier) {
  std::vector<std::pair<double, double>> pts = {
      {0.1, 0.9}, {0.3, 0.8}, {0.5, 0.85}, {0.7, 0.6}, {0.9, 0.4},
      {0.2, 0.2}, {0.6, 0.5}, {0.8, 0.61}};
  auto sky = ParetoSkyline(pts);
  // Ascending x, non-increasing y along the frontier.
  for (size_t i = 1; i < sky.size(); ++i) {
    EXPECT_LE(pts[sky[i - 1]].first, pts[sky[i]].first);
    EXPECT_GE(pts[sky[i - 1]].second, pts[sky[i]].second);
  }
  // Every non-skyline point is dominated by some skyline point.
  for (size_t p = 0; p < pts.size(); ++p) {
    if (std::find(sky.begin(), sky.end(), p) != sky.end()) continue;
    bool dominated = false;
    for (size_t s : sky) {
      if (pts[s].first >= pts[p].first && pts[s].second > pts[p].second) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << "point " << p;
  }
}

TEST(SkylineTest, EqualXKeepsBestYOnly) {
  std::vector<std::pair<double, double>> pts = {{0.5, 0.3}, {0.5, 0.9}};
  EXPECT_EQ(ParetoSkyline(pts), (std::vector<size_t>{1}));
}

TEST(SkylineTest, EqualYBothSurvive) {
  // Under the paper's dominance (x' >= x and y' > y), equal-y points do
  // not dominate each other; both stay.
  std::vector<std::pair<double, double>> pts = {{0.3, 0.5}, {0.7, 0.5}};
  auto sky = ParetoSkyline(pts);
  // Neither dominates the other (dominance needs strictly larger y).
  EXPECT_EQ(sky, (std::vector<size_t>{0, 1}));
}

TEST(SkylineTest, AllIdenticalPoints) {
  std::vector<std::pair<double, double>> pts(4, {0.4, 0.4});
  // Identical points do not dominate one another; all survive.
  EXPECT_EQ(ParetoSkyline(pts).size(), 4u);
}

}  // namespace
}  // namespace ida
