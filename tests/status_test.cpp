#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ida {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ConvertingConstructor) {
  // A shared_ptr<Derived-ish> converts through; this mirrors how
  // Result<DisplayPtr> accepts make_shared<Display>.
  std::shared_ptr<int> p = std::make_shared<int>(7);
  Result<std::shared_ptr<const int>> r(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailingStep() { return Status::IoError("disk"); }

Status UsesReturnNotOk() {
  IDA_RETURN_NOT_OK(FailingStep());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kIoError);
}

Result<int> GiveSeven() { return 7; }

Result<int> UsesAssignOrReturn() {
  IDA_ASSIGN_OR_RETURN(int v, GiveSeven());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacroBinds) {
  Result<int> r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 8);
}

}  // namespace
}  // namespace ida
