#include "common/strings.h"

#include <gtest/gtest.h>

namespace ida {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsSplit) {
  std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("SESSION x", "SESSION"));
  EXPECT_FALSE(StartsWith("SESS", "SESSION"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HtTp"), "http");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.25), "1.25");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.070000, 3), "0.07");
  EXPECT_EQ(FormatDouble(-2.5), "-2.5");
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace ida
