#include "predict/svm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ida {
namespace {

// Builds a Euclidean distance matrix over 1-D points.
std::vector<std::vector<double>> PointDistances(
    const std::vector<double>& xs) {
  std::vector<std::vector<double>> d(xs.size(),
                                     std::vector<double>(xs.size(), 0.0));
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < xs.size(); ++j) {
      d[i][j] = std::fabs(xs[i] - xs[j]);
    }
  }
  return d;
}

TEST(KernelTest, MedianSigma) {
  auto d = PointDistances({0.0, 1.0, 2.0});
  // Pairwise distances {1, 2, 1} -> median 1.
  EXPECT_DOUBLE_EQ(MedianSigma(d), 1.0);
  // All-zero distances degrade to 1.
  EXPECT_DOUBLE_EQ(MedianSigma({{0.0, 0.0}, {0.0, 0.0}}), 1.0);
}

TEST(KernelTest, DistanceToKernelProperties) {
  auto dist = PointDistances({0.0, 0.5, 3.0});
  auto k = DistanceToKernel(dist, 1.0);
  for (size_t i = 0; i < k.size(); ++i) {
    EXPECT_DOUBLE_EQ(k[i][i], 1.0);  // zero distance
    for (size_t j = 0; j < k.size(); ++j) {
      EXPECT_GT(k[i][j], 0.0);
      EXPECT_LE(k[i][j], 1.0);
      EXPECT_DOUBLE_EQ(k[i][j], k[j][i]);
    }
  }
  // Monotone: nearer pairs have larger kernel value.
  EXPECT_GT(k[0][1], k[0][2]);
}

TEST(KernelTest, RowConversionMatchesMatrix) {
  auto dist = PointDistances({0.0, 1.0, 2.0});
  double sigma = 0.7;
  auto k = DistanceToKernel(dist, sigma);
  auto row = DistanceRowToKernelRow(dist[1], sigma);
  for (size_t j = 0; j < row.size(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], k[1][j]);
  }
}

TEST(BinarySvmTest, SeparatesTwoClusters) {
  std::vector<double> xs = {0.0, 0.1, 0.2, 0.3, 5.0, 5.1, 5.2, 5.3};
  std::vector<int> ys = {-1, -1, -1, -1, 1, 1, 1, 1};
  auto kernel = DistanceToKernel(PointDistances(xs), 1.0);
  BinaryKernelSvm svm;
  ASSERT_TRUE(svm.Train(kernel, ys).ok());
  // Training points classified correctly.
  for (size_t i = 0; i < xs.size(); ++i) {
    double d = svm.Decision(kernel[i]);
    EXPECT_GT(d * ys[i], 0.0) << "point " << xs[i];
  }
}

TEST(BinarySvmTest, ClassifiesHeldOutPoints) {
  std::vector<double> xs = {0.0, 0.2, 0.4, 4.6, 4.8, 5.0};
  std::vector<int> ys = {-1, -1, -1, 1, 1, 1};
  double sigma = 1.0;
  auto kernel = DistanceToKernel(PointDistances(xs), sigma);
  BinaryKernelSvm svm;
  ASSERT_TRUE(svm.Train(kernel, ys).ok());
  auto query_row = [&](double q) {
    std::vector<double> row(xs.size());
    for (size_t j = 0; j < xs.size(); ++j) row[j] = std::fabs(q - xs[j]);
    return DistanceRowToKernelRow(row, sigma);
  };
  EXPECT_LT(svm.Decision(query_row(0.3)), 0.0);
  EXPECT_GT(svm.Decision(query_row(4.7)), 0.0);
}

TEST(BinarySvmTest, RejectsMalformedInput) {
  BinaryKernelSvm svm;
  EXPECT_FALSE(svm.Train({{1.0}}, {1, -1}).ok());           // size mismatch
  EXPECT_FALSE(svm.Train({{1.0, 0.0}}, {1, -1}).ok());      // not square
  EXPECT_FALSE(
      svm.Train({{1.0, 0.0}, {0.0, 1.0}}, {1, 2}).ok());    // bad labels
}

TEST(BinarySvmTest, OneClassDegeneratesToConstant) {
  auto kernel = DistanceToKernel(PointDistances({0.0, 1.0}), 1.0);
  BinaryKernelSvm svm;
  ASSERT_TRUE(svm.Train(kernel, {1, 1}).ok());
  EXPECT_GT(svm.Decision(kernel[0]), 0.0);
  EXPECT_GT(svm.Decision(kernel[1]), 0.0);
}

TEST(MultiClassSvmTest, ThreeClusters) {
  std::vector<double> xs;
  std::vector<int> ys;
  Rng rng(5);
  for (int cls = 0; cls < 3; ++cls) {
    for (int i = 0; i < 8; ++i) {
      xs.push_back(cls * 4.0 + rng.UniformReal(-0.3, 0.3));
      ys.push_back(cls);
    }
  }
  double sigma = 1.0;
  auto kernel = DistanceToKernel(PointDistances(xs), sigma);
  MultiClassKernelSvm svm;
  ASSERT_TRUE(svm.Train(kernel, ys).ok());
  EXPECT_EQ(svm.classes().size(), 3u);
  int correct = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (svm.Predict(kernel[i]) == ys[i]) ++correct;
  }
  EXPECT_GE(correct, 22);  // near-perfect on training data
}

TEST(MultiClassSvmTest, AlwaysPredicts) {
  auto kernel = DistanceToKernel(PointDistances({0.0, 1.0, 5.0}), 1.0);
  MultiClassKernelSvm svm;
  ASSERT_TRUE(svm.Train(kernel, {0, 0, 1}).ok());
  // Even a far-away query gets a label (100% coverage).
  std::vector<double> far_row = DistanceRowToKernelRow({50.0, 50.0, 50.0}, 1.0);
  EXPECT_GE(svm.Predict(far_row), 0);
}

TEST(MultiClassSvmTest, EmptyModelPredictsMinusOne) {
  MultiClassKernelSvm svm;
  EXPECT_EQ(svm.Predict({1.0}), -1);
}

}  // namespace
}  // namespace ida
