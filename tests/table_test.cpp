#include "data/table.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ida {
namespace {

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("missing"), -1);
  EXPECT_TRUE(s.HasField("a"));
  EXPECT_FALSE(s.HasField("c"));
  EXPECT_EQ(s.ToString(), "a:int, b:string");
}

TEST(TableBuilderTest, BuildsTable) {
  auto t = testing::MakeTable(
      {"name", "count"},
      {{Value("x"), Value(int64_t{1})}, {Value("y"), Value(int64_t{2})}});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->num_columns(), 2u);
  EXPECT_EQ(t->GetValue(1, 0).as_string(), "y");
  EXPECT_EQ(t->GetValue(0, 1).as_int(), 1);
}

TEST(TableBuilderTest, RejectsWrongWidth) {
  TableBuilder b({"a", "b"});
  EXPECT_FALSE(b.AppendRow({Value(int64_t{1})}).ok());
}

TEST(TableTest, MakeRejectsRaggedColumns) {
  ColumnBuilder a("a"), b("b");
  a.AppendInt(1);
  a.AppendInt(2);
  b.AppendInt(1);
  auto ca = a.Finish();
  auto cb = b.Finish();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  auto t = DataTable::Make({*ca, *cb});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, ColumnByName) {
  auto t = testing::PacketsTable();
  ASSERT_NE(t, nullptr);
  EXPECT_NE(t->ColumnByName("protocol"), nullptr);
  EXPECT_EQ(t->ColumnByName("nope"), nullptr);
}

TEST(TableTest, TakeSelectsRowsInOrder) {
  auto t = testing::PacketsTable();
  auto taken = t->Take({5, 0});
  EXPECT_EQ(taken->num_rows(), 2u);
  EXPECT_EQ(taken->GetValue(0, 0).as_string(), "SSH");
  EXPECT_EQ(taken->GetValue(1, 0).as_string(), "HTTP");
  // Schema preserved.
  EXPECT_EQ(taken->schema().ToString(), t->schema().ToString());
}

TEST(TableTest, TakeEmptySelection) {
  auto t = testing::PacketsTable();
  auto taken = t->Take({});
  EXPECT_EQ(taken->num_rows(), 0u);
  EXPECT_EQ(taken->num_columns(), t->num_columns());
}

TEST(TableTest, ToStringTruncates) {
  auto t = testing::PacketsTable();
  std::string s = t->ToString(2);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace ida
