#include "distance/ted.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/generator.h"
#include "test_util.h"

namespace ida {
namespace {

// Contexts extracted from the running-example session at various states
// and sizes give a small diverse tree population.
std::vector<NContext> ExampleContexts() {
  SessionTree t = testing::ExampleSession();
  std::vector<NContext> out;
  for (int step = 0; step <= t.num_steps(); ++step) {
    for (int n : {1, 3, 5, 7}) {
      out.push_back(ExtractNContext(t, step, n));
    }
  }
  return out;
}

TEST(TedTest, IdenticalTreesHaveZeroDistance) {
  SessionDistance metric;
  for (const NContext& c : ExampleContexts()) {
    EXPECT_NEAR(metric.TreeEditDistance(c, c), 0.0, 1e-12);
    EXPECT_NEAR(metric.Distance(c, c), 0.0, 1e-12);
  }
}

TEST(TedTest, EmptyTreeCosts) {
  SessionDistance metric;
  NContext empty;
  SessionTree t = testing::ExampleSession();
  NContext c = ExtractNContext(t, 2, 3);  // 2 nodes
  EXPECT_DOUBLE_EQ(metric.TreeEditDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(metric.TreeEditDistance(c, empty), 2.0);
  EXPECT_DOUBLE_EQ(metric.TreeEditDistance(empty, c), 2.0);
  EXPECT_DOUBLE_EQ(metric.Distance(c, empty), 1.0);  // maximal
}

TEST(TedTest, Symmetry) {
  SessionDistance metric;
  auto contexts = ExampleContexts();
  for (size_t i = 0; i < contexts.size(); ++i) {
    for (size_t j = i + 1; j < contexts.size(); ++j) {
      EXPECT_NEAR(metric.TreeEditDistance(contexts[i], contexts[j]),
                  metric.TreeEditDistance(contexts[j], contexts[i]), 1e-9);
    }
  }
}

TEST(TedTest, TriangleInequalityOnSample) {
  SessionDistance metric;
  auto contexts = ExampleContexts();
  for (size_t i = 0; i < contexts.size(); ++i) {
    for (size_t j = 0; j < contexts.size(); ++j) {
      for (size_t k = 0; k < contexts.size(); ++k) {
        double dij = metric.TreeEditDistance(contexts[i], contexts[j]);
        double djk = metric.TreeEditDistance(contexts[j], contexts[k]);
        double dik = metric.TreeEditDistance(contexts[i], contexts[k]);
        EXPECT_LE(dik, dij + djk + 1e-9)
            << "triangle violated at (" << i << "," << j << "," << k << ")";
      }
    }
  }
}

TEST(TedTest, SingleNodeTreesCompareByGroundMetrics) {
  SessionTree t = testing::ExampleSession();
  NContext a = ExtractNContext(t, 0, 1);  // root display only
  NContext b = ExtractNContext(t, 1, 1);  // d1 only
  SessionDistance metric;
  double d = metric.TreeEditDistance(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);  // an alter costs at most indel
}

TEST(TedTest, AlterCheaperThanDeleteInsert) {
  // Two 3-element contexts differing only in the incoming action should
  // sit well below the normalized maximum.
  SessionTree t = testing::ExampleSession();
  NContext a = ExtractNContext(t, 1, 3);
  NContext b = ExtractNContext(t, 2, 3);
  SessionDistance metric;
  EXPECT_LT(metric.Distance(a, b), 0.5);
}

TEST(TedTest, NormalizedDistanceBounded) {
  SessionDistance metric;
  auto contexts = ExampleContexts();
  for (const NContext& a : contexts) {
    for (const NContext& b : contexts) {
      double d = metric.Distance(a, b);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(TedTest, LargerDivergenceLargerDistance) {
  ActionExecutor exec;
  SessionTree t("s", "u", "d", Display::MakeRoot(testing::PacketsTable()));
  // Branch A: two group-bys; branch B: two filters.
  auto a1 = t.ApplyFrom(0, Action::GroupBy("protocol", AggFunc::kCount), exec);
  ASSERT_TRUE(a1.ok());
  auto b1 = t.ApplyFrom(
      0, Action::Filter({{"hour", CompareOp::kGe, Value(int64_t{19})}}), exec);
  ASSERT_TRUE(b1.ok());
  NContext near_a = ExtractNContext(t, 1, 3);
  NContext near_b = ExtractNContext(t, 2, 3);
  // A context equal to near_a must be closer to near_a than near_b is.
  SessionDistance metric;
  EXPECT_LT(metric.Distance(near_a, near_a), metric.Distance(near_a, near_b));
}

TEST(TedTest, DistanceMatrixSymmetricZeroDiagonal) {
  auto contexts = ExampleContexts();
  SessionDistance metric;
  auto m = BuildDistanceMatrix(contexts, metric);
  ASSERT_EQ(m.size(), contexts.size());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m[i][i], 0.0);
    for (size_t j = 0; j < m.size(); ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
    }
  }
}

TEST(TedTest, MetricPropertiesOnSynthContexts) {
  // Broader property sweep over generated sessions.
  auto bench = GenerateBenchmark(SmallGeneratorOptions(21));
  ASSERT_TRUE(bench.ok());
  ActionExecutor exec;
  std::vector<NContext> contexts;
  for (const SessionRecord& rec : bench->log.records()) {
    auto tree = ReplaySession(rec, bench->registry, exec);
    ASSERT_TRUE(tree.ok());
    for (int step = 0; step <= std::min(3, tree->num_steps()); ++step) {
      contexts.push_back(ExtractNContext(*tree, step, 5));
    }
    if (contexts.size() > 14) break;
  }
  SessionDistance metric;
  for (size_t i = 0; i < contexts.size(); ++i) {
    for (size_t j = 0; j < contexts.size(); ++j) {
      double dij = metric.TreeEditDistance(contexts[i], contexts[j]);
      EXPECT_NEAR(dij, metric.TreeEditDistance(contexts[j], contexts[i]),
                  1e-9);
      for (size_t k = 0; k < contexts.size(); ++k) {
        EXPECT_LE(metric.TreeEditDistance(contexts[i], contexts[k]),
                  dij + metric.TreeEditDistance(contexts[j], contexts[k]) +
                      1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace ida
