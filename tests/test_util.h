// Shared helpers for the test suite: tiny tables, displays with chosen
// profiles, and miniature session trees.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "actions/display.h"
#include "actions/executor.h"
#include "data/table.h"
#include "session/tree.h"

namespace ida::testing {

/// Builds a table from rows; column types are inferred from values.
inline std::shared_ptr<const DataTable> MakeTable(
    const std::vector<std::string>& columns,
    const std::vector<std::vector<Value>>& rows) {
  TableBuilder b(columns);
  for (const auto& row : rows) {
    Status st = b.AppendRow(row);
    if (!st.ok()) return nullptr;
  }
  auto r = b.Finish();
  return r.ok() ? *r : nullptr;
}

/// A display whose interest profile is exactly `values` (counts double as
/// group sizes), detached from any table content. `rows` defaults to the
/// number of groups (like an aggregated display).
inline DisplayPtr MakeProfileDisplay(const std::vector<double>& values,
                                     DisplayKind kind = DisplayKind::kAggregated,
                                     size_t dataset_size = 1000,
                                     size_t rows = 0) {
  InterestProfile p;
  p.column = "col";
  for (size_t i = 0; i < values.size(); ++i) {
    p.labels.push_back("g" + std::to_string(i));
    p.values.push_back(values[i]);
    p.group_sizes.push_back(values[i]);
  }
  TableBuilder b({"col", "count"});
  size_t want_rows = rows == 0 ? values.size() : rows;
  for (size_t i = 0; i < want_rows; ++i) {
    Status st = b.AppendRow(
        {Value("g" + std::to_string(i)),
         Value(i < values.size() ? values[i] : 0.0)});
    (void)st;
  }
  auto table = b.Finish();
  return std::make_shared<Display>(kind, *table, std::move(p), dataset_size);
}

/// The small packets table used across action/session tests.
inline std::shared_ptr<const DataTable> PacketsTable() {
  return MakeTable(
      {"protocol", "dst_ip", "length", "hour"},
      {
          {Value("HTTP"), Value("1.1.1.1"), Value(int64_t{100}), Value(int64_t{9})},
          {Value("HTTP"), Value("2.2.2.2"), Value(int64_t{60}), Value(int64_t{20})},
          {Value("HTTP"), Value("2.2.2.2"), Value(int64_t{55}), Value(int64_t{21})},
          {Value("DNS"), Value("3.3.3.3"), Value(int64_t{70}), Value(int64_t{10})},
          {Value("DNS"), Value("1.1.1.1"), Value(int64_t{80}), Value(int64_t{11})},
          {Value("SSH"), Value("4.4.4.4"), Value(int64_t{500}), Value(int64_t{2})},
          {Value("HTTP"), Value("2.2.2.2"), Value(int64_t{58}), Value(int64_t{23})},
          {Value("SMTP"), Value("5.5.5.5"), Value(int64_t{300}), Value(int64_t{14})},
      });
}

/// A linear session: root -> q1(group protocol) -> q2(filter hour>=19 from
/// root) -> q3(group dst_ip), mirroring the paper's running example
/// topology (q2 backtracks to the root).
inline SessionTree ExampleSession() {
  ActionExecutor exec;
  SessionTree tree("example", "clarice", "packets",
                   Display::MakeRoot(PacketsTable()));
  auto q1 = Action::GroupBy("protocol", AggFunc::kCount);
  auto q2 = Action::Filter({Predicate{"protocol", CompareOp::kEq, Value("HTTP")},
                            Predicate{"hour", CompareOp::kGe, Value(int64_t{19})}});
  auto q3 = Action::GroupBy("dst_ip", AggFunc::kCount);
  auto r1 = tree.ApplyFrom(0, q1, exec);
  auto r2 = tree.ApplyFrom(0, q2, exec);  // backtracked to root
  auto r3 = tree.ApplyFrom(*r2, q3, exec);
  (void)r1;
  (void)r3;
  return tree;
}

}  // namespace ida::testing
