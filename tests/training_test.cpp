#include "offline/training.h"

#include <gtest/gtest.h>

#include <map>

#include "synth/generator.h"

namespace ida {
namespace {

class TrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto b = GenerateBenchmark(SmallGeneratorOptions(33));
    ASSERT_TRUE(b.ok());
    ActionExecutor exec;
    auto repo = ReplayedRepository::Build(b->log, b->registry, exec);
    ASSERT_TRUE(repo.ok());
    repo_ = new ReplayedRepository(std::move(*repo));
    labeler_ = new NormalizedLabeler(
        {CreateMeasure("variance"), CreateMeasure("schutz"),
         CreateMeasure("osf"), CreateMeasure("compaction_gain")});
    ASSERT_TRUE(labeler_->Preprocess(*repo_).ok());
    auto labeled = LabelRepository(*repo_, labeler_);
    ASSERT_TRUE(labeled.ok());
    labeled_ = new std::vector<LabeledStep>(std::move(*labeled));
  }
  static void TearDownTestSuite() {
    delete labeled_;
    delete labeler_;
    delete repo_;
  }

  static ReplayedRepository* repo_;
  static NormalizedLabeler* labeler_;
  static std::vector<LabeledStep>* labeled_;
};

ReplayedRepository* TrainingTest::repo_ = nullptr;
NormalizedLabeler* TrainingTest::labeler_ = nullptr;
std::vector<LabeledStep>* TrainingTest::labeled_ = nullptr;

TEST_F(TrainingTest, BuildsSamplesForSuccessfulSessions) {
  TrainingSetStats stats;
  // n = 3, theta_I = -100 (keep everything).
  auto samples = BuildTrainingSet(*repo_, labeler_, 3, -100.0, {}, &stats);
  ASSERT_TRUE(samples.ok());
  size_t successful_states = 0;
  for (const auto& tree : repo_->trees()) {
    if (tree.successful()) {
      successful_states += static_cast<size_t>(tree.num_steps());
    }
  }
  EXPECT_EQ(stats.states_considered, successful_states);
  EXPECT_EQ(samples->size(), successful_states);
  EXPECT_EQ(stats.filtered_by_theta, 0u);
  for (const TrainingSample& s : *samples) {
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 4);
    EXPECT_FALSE(s.context.empty());
    EXPECT_LE(s.context.size_elements(), 4u);  // n=3 can overshoot by 1
  }
}

TEST_F(TrainingTest, ThetaFilterDropsWeakSamples) {
  auto all = BuildTrainingSet(*repo_, labeler_, 3, -100.0);
  auto filtered = BuildTrainingSet(*repo_, labeler_, 3, 1.5);  // std devs
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered->size(), all->size());
  for (const TrainingSample& s : *filtered) {
    EXPECT_GE(s.max_relative, 1.5);
  }
}

TEST_F(TrainingTest, SuccessfulOnlyToggle) {
  TrainingSetOptions options;
  options.successful_only = false;
  auto all_sessions = BuildTrainingSet(*repo_, labeler_, 3, -100.0, options);
  options.successful_only = true;
  auto successful = BuildTrainingSet(*repo_, labeler_, 3, -100.0, options);
  ASSERT_TRUE(all_sessions.ok());
  ASSERT_TRUE(successful.ok());
  EXPECT_GE(all_sessions->size(), successful->size());
  EXPECT_EQ(all_sessions->size(), repo_->total_steps());
}

TEST_F(TrainingTest, FromLabelsMatchesDirectConstruction) {
  auto direct = BuildTrainingSet(*repo_, labeler_, 2, 0.3);
  auto from_labels = BuildTrainingSetFromLabels(*repo_, *labeled_, 2, 0.3);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(from_labels.ok());
  ASSERT_EQ(direct->size(), from_labels->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].label, (*from_labels)[i].label);
    EXPECT_EQ((*direct)[i].step, (*from_labels)[i].step);
    EXPECT_EQ((*direct)[i].context.Fingerprint(),
              (*from_labels)[i].context.Fingerprint());
  }
}

TEST_F(TrainingTest, MergeIdenticalUnanimity) {
  TrainingSetOptions options;
  options.merge_identical = true;
  // n = 1: single-display contexts collide often.
  auto merged = BuildTrainingSet(*repo_, labeler_, 1, -100.0, options);
  ASSERT_TRUE(merged.ok());
  // After merging, identical fingerprints carry identical labels.
  std::map<std::string, int> label_of;
  for (const TrainingSample& s : *merged) {
    std::string fp = s.context.Fingerprint();
    auto it = label_of.find(fp);
    if (it == label_of.end()) {
      label_of[fp] = s.label;
    } else {
      EXPECT_EQ(it->second, s.label) << "fingerprint " << fp;
    }
  }
}

TEST_F(TrainingTest, RejectsBadContextSize) {
  EXPECT_FALSE(BuildTrainingSet(*repo_, labeler_, 0, 0.0).ok());
  EXPECT_FALSE(BuildTrainingSetFromLabels(*repo_, *labeled_, 0, 0.0).ok());
}

TEST_F(TrainingTest, FromLabelsValidatesProvenance) {
  TrainingSetOptions options;
  std::vector<LabeledStep> bogus = *labeled_;
  bogus[0].tree_index = 10000;
  EXPECT_FALSE(
      BuildTrainingSetFromLabels(*repo_, bogus, 3, 0.0, options).ok());
  bogus = *labeled_;
  bogus[0].step = 10000;
  // Step out of range on a successful tree errors; on a skipped
  // (unsuccessful) tree it is ignored. Force successful_only=false to
  // exercise the check deterministically.
  options.successful_only = false;
  EXPECT_FALSE(
      BuildTrainingSetFromLabels(*repo_, bogus, 3, 0.0, options).ok());
}

}  // namespace
}  // namespace ida
