#include "offline/training.h"

#include <gtest/gtest.h>

#include <map>

#include "synth/generator.h"

namespace ida {
namespace {

class TrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto b = GenerateBenchmark(SmallGeneratorOptions(33));
    ASSERT_TRUE(b.ok());
    ActionExecutor exec;
    auto repo = ReplayedRepository::Build(b->log, b->registry, exec);
    ASSERT_TRUE(repo.ok());
    repo_ = new ReplayedRepository(std::move(*repo));
    labeler_ = new NormalizedLabeler(
        {CreateMeasure("variance"), CreateMeasure("schutz"),
         CreateMeasure("osf"), CreateMeasure("compaction_gain")});
    ASSERT_TRUE(labeler_->Preprocess(*repo_).ok());
    auto labeled = LabelRepository(*repo_, labeler_);
    ASSERT_TRUE(labeled.ok());
    labeled_ = new std::vector<LabeledStep>(std::move(*labeled));
  }
  static void TearDownTestSuite() {
    delete labeled_;
    delete labeler_;
    delete repo_;
  }

  static ReplayedRepository* repo_;
  static NormalizedLabeler* labeler_;
  static std::vector<LabeledStep>* labeled_;
};

ReplayedRepository* TrainingTest::repo_ = nullptr;
NormalizedLabeler* TrainingTest::labeler_ = nullptr;
std::vector<LabeledStep>* TrainingTest::labeled_ = nullptr;

TEST_F(TrainingTest, BuildsSamplesForSuccessfulSessions) {
  TrainingSetOptions options;
  options.n_context_size = 3;
  options.theta_interest = -100.0;  // keep everything
  TrainingSetStats stats;
  auto samples = BuildTrainingSet(*repo_, labeler_, options, &stats);
  ASSERT_TRUE(samples.ok());
  size_t successful_states = 0;
  for (const auto& tree : repo_->trees()) {
    if (tree.successful()) {
      successful_states += static_cast<size_t>(tree.num_steps());
    }
  }
  EXPECT_EQ(stats.states_considered, successful_states);
  EXPECT_EQ(samples->size(), successful_states);
  EXPECT_EQ(stats.filtered_by_theta, 0u);
  for (const TrainingSample& s : *samples) {
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 4);
    EXPECT_FALSE(s.context.empty());
    EXPECT_LE(s.context.size_elements(), 4u);  // n=3 can overshoot by 1
  }
}

TEST_F(TrainingTest, ThetaFilterDropsWeakSamples) {
  TrainingSetOptions loose, strict;
  loose.theta_interest = -100.0;
  strict.theta_interest = 1.5;  // standard deviations
  auto all = BuildTrainingSet(*repo_, labeler_, loose);
  auto filtered = BuildTrainingSet(*repo_, labeler_, strict);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered->size(), all->size());
  for (const TrainingSample& s : *filtered) {
    EXPECT_GE(s.max_relative, 1.5);
  }
}

TEST_F(TrainingTest, SuccessfulOnlyToggle) {
  TrainingSetOptions options;
  options.theta_interest = -100.0;
  options.successful_only = false;
  auto all_sessions = BuildTrainingSet(*repo_, labeler_, options);
  options.successful_only = true;
  auto successful = BuildTrainingSet(*repo_, labeler_, options);
  ASSERT_TRUE(all_sessions.ok());
  ASSERT_TRUE(successful.ok());
  EXPECT_GE(all_sessions->size(), successful->size());
  EXPECT_EQ(all_sessions->size(), repo_->total_steps());
}

TEST_F(TrainingTest, FromLabelsMatchesDirectConstruction) {
  TrainingSetOptions options;
  options.n_context_size = 2;
  options.theta_interest = 0.3;
  auto direct = BuildTrainingSet(*repo_, labeler_, options);
  auto from_labels =
      BuildTrainingSetFromLabels(*repo_, *labeled_, options);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(from_labels.ok());
  ASSERT_EQ(direct->size(), from_labels->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].label, (*from_labels)[i].label);
    EXPECT_EQ((*direct)[i].step, (*from_labels)[i].step);
    EXPECT_EQ((*direct)[i].context.Fingerprint(),
              (*from_labels)[i].context.Fingerprint());
  }
}

TEST_F(TrainingTest, MergeIdenticalUnanimity) {
  TrainingSetOptions options;
  options.n_context_size = 1;  // single-display contexts collide often
  options.theta_interest = -100.0;
  options.merge_identical = true;
  auto merged = BuildTrainingSet(*repo_, labeler_, options);
  ASSERT_TRUE(merged.ok());
  // After merging, identical fingerprints carry identical labels.
  std::map<std::string, int> label_of;
  for (const TrainingSample& s : *merged) {
    std::string fp = s.context.Fingerprint();
    auto it = label_of.find(fp);
    if (it == label_of.end()) {
      label_of[fp] = s.label;
    } else {
      EXPECT_EQ(it->second, s.label) << "fingerprint " << fp;
    }
  }
}

TEST_F(TrainingTest, RejectsBadContextSize) {
  TrainingSetOptions options;
  options.n_context_size = 0;
  EXPECT_FALSE(BuildTrainingSet(*repo_, labeler_, options).ok());
  EXPECT_FALSE(BuildTrainingSetFromLabels(*repo_, *labeled_, options).ok());
}

TEST_F(TrainingTest, FromLabelsValidatesProvenance) {
  TrainingSetOptions options;
  std::vector<LabeledStep> bogus = *labeled_;
  bogus[0].tree_index = 10000;
  EXPECT_FALSE(BuildTrainingSetFromLabels(*repo_, bogus, options).ok());
  bogus = *labeled_;
  bogus[0].step = 10000;
  // Step out of range on a successful tree errors; on a skipped
  // (unsuccessful) tree it is ignored. Force successful_only=false to
  // exercise the check deterministically.
  options.successful_only = false;
  EXPECT_FALSE(BuildTrainingSetFromLabels(*repo_, bogus, options).ok());
}

}  // namespace
}  // namespace ida
