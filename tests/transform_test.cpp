#include "stats/transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/descriptive.h"

namespace ida {
namespace {

TEST(BoxCoxTest, LambdaOneIsShiftedIdentity) {
  BoxCoxTransform t{1.0, 0.0};
  EXPECT_DOUBLE_EQ(t.Apply(5.0), 4.0);  // (x^1 - 1)/1
}

TEST(BoxCoxTest, LambdaZeroIsLog) {
  BoxCoxTransform t{0.0, 0.0};
  EXPECT_NEAR(t.Apply(std::exp(2.0)), 2.0, 1e-12);
}

TEST(BoxCoxTest, ShiftKeepsInputsPositive) {
  BoxCoxTransform t{0.5, 3.0};
  EXPECT_TRUE(std::isfinite(t.Apply(-2.9)));
  // Even deeply negative inputs are clamped, not NaN.
  EXPECT_TRUE(std::isfinite(t.Apply(-100.0)));
}

TEST(BoxCoxTest, MonotoneIncreasing) {
  for (double lambda : {-2.0, -0.5, 0.0, 0.5, 1.0, 2.0}) {
    BoxCoxTransform t{lambda, 0.0};
    double prev = t.Apply(0.1);
    for (double x = 0.2; x < 10.0; x += 0.3) {
      double cur = t.Apply(x);
      EXPECT_GT(cur, prev) << "lambda=" << lambda << " x=" << x;
      prev = cur;
    }
  }
}

TEST(BoxCoxTest, FitRecoversLogNormalLambdaNearZero) {
  // For log-normal data the likelihood-optimal lambda is ~0.
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(std::exp(rng.Gaussian(0.0, 1.0)));
  BoxCoxTransform t = FitBoxCox(xs);
  EXPECT_NEAR(t.lambda, 0.0, 0.15);
}

TEST(BoxCoxTest, FitOnNormalDataKeepsLambdaNearOne) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.Gaussian(10.0, 1.0));
  BoxCoxTransform t = FitBoxCox(xs);
  EXPECT_NEAR(t.lambda, 1.0, 0.6);
}

TEST(BoxCoxTest, FitReducesSkewOfSkewedSample) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.Exponential(1.0) + 0.01);
  BoxCoxTransform t = FitBoxCox(xs);
  double skew_before = std::fabs(Skewness(xs));
  double skew_after = std::fabs(Skewness(t.ApplyAll(xs)));
  EXPECT_LT(skew_after, skew_before * 0.5);
}

TEST(BoxCoxTest, NegativeInputsGetShifted) {
  std::vector<double> xs = {-3.0, -1.0, 0.0, 2.0, 5.0};
  BoxCoxTransform t = FitBoxCox(xs);
  EXPECT_GT(t.shift, 3.0 - 1e-6);
  for (double x : xs) EXPECT_TRUE(std::isfinite(t.Apply(x)));
}

TEST(BoxCoxTest, DegenerateSamples) {
  EXPECT_DOUBLE_EQ(FitBoxCox({}).lambda, 1.0);
  EXPECT_DOUBLE_EQ(FitBoxCox({5.0}).lambda, 1.0);
  BoxCoxTransform t = FitBoxCox({2.0, 2.0, 2.0});
  EXPECT_TRUE(std::isfinite(t.Apply(2.0)));
}

TEST(BoxCoxTest, LogLikelihoodPeaksNearFittedLambda) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(std::exp(rng.Gaussian(1.0, 0.5)));
  BoxCoxTransform t = FitBoxCox(xs);
  double at_fit = BoxCoxLogLikelihood(xs, t.lambda);
  EXPECT_GE(at_fit, BoxCoxLogLikelihood(xs, t.lambda + 1.0));
  EXPECT_GE(at_fit, BoxCoxLogLikelihood(xs, t.lambda - 1.0));
}

TEST(ZScoreTest, StandardizesToZeroMeanUnitSd) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  ZScoreParams p = FitZScore(xs);
  std::vector<double> zs;
  for (double x : xs) zs.push_back(p.Apply(x));
  EXPECT_NEAR(Mean(zs), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(zs), 1.0, 1e-12);
}

TEST(ZScoreTest, ConstantSampleDegradesGracefully) {
  ZScoreParams p = FitZScore({4.0, 4.0, 4.0});
  EXPECT_DOUBLE_EQ(p.stddev, 1.0);
  EXPECT_DOUBLE_EQ(p.Apply(4.0), 0.0);
}

TEST(NormalizedScoreModelTest, NormalizedSampleIsStandardized) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.Exponential(0.5));
  NormalizedScoreModel m = NormalizedScoreModel::Fit(xs);
  std::vector<double> zs;
  for (double x : xs) zs.push_back(m.Normalize(x));
  EXPECT_NEAR(Mean(zs), 0.0, 1e-9);
  EXPECT_NEAR(StdDev(zs), 1.0, 1e-9);
  // Skew is also tamed (that is the point of the Box-Cox stage).
  EXPECT_LT(std::fabs(Skewness(zs)), std::fabs(Skewness(xs)));
}

TEST(NormalizedScoreModelTest, PreservesOrder) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.UniformReal(0.0, 100.0));
  NormalizedScoreModel m = NormalizedScoreModel::Fit(xs);
  EXPECT_LT(m.Normalize(1.0), m.Normalize(2.0));
  EXPECT_LT(m.Normalize(50.0), m.Normalize(99.0));
}

TEST(NormalizedScoreModelTest, MostMassWithinTwoPointFiveSigma) {
  // The paper notes standardized scores "largely fall between -2.5 and
  // 2.5 standard deviations".
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.Exponential(1.0));
  NormalizedScoreModel m = NormalizedScoreModel::Fit(xs);
  size_t inside = 0;
  for (double x : xs) {
    double z = m.Normalize(x);
    if (z > -2.5 && z < 2.5) ++inside;
  }
  EXPECT_GT(static_cast<double>(inside) / static_cast<double>(xs.size()),
            0.95);
}

TEST(FitBoxCoxTest, ExtremeScaleDataDoesNotOverflowToBoundaryLambda) {
  // Regression: for very large inputs, pow(x, lambda) overflows to inf for
  // lambdas well inside the search bracket. The resulting NaN log-likelihood
  // used to poison every golden-section comparison (NaN > x is false),
  // silently driving lambda to the bracket boundary and making the fitted
  // transform produce inf. Overflowing lambdas must instead score -inf so
  // the search stays in the finite region.
  std::vector<double> xs;
  for (int i = 1; i <= 12; ++i) xs.push_back(1e270 * static_cast<double>(i));
  BoxCoxTransform t = FitBoxCox(xs);
  EXPECT_LT(t.lambda, 4.999);  // not pinned to the +5 boundary
  for (double x : xs) {
    EXPECT_TRUE(std::isfinite(t.Apply(x))) << "x=" << x;
  }
  EXPECT_TRUE(std::isfinite(BoxCoxLogLikelihood(xs, t.lambda)));

  // And the full normalized-score pipeline stays finite end to end.
  NormalizedScoreModel m = NormalizedScoreModel::Fit(xs);
  for (double x : xs) {
    EXPECT_TRUE(std::isfinite(m.Normalize(x))) << "x=" << x;
  }
}

}  // namespace
}  // namespace ida
