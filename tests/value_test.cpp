#include "data/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace ida {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{5}).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(std::string("s")).type(), ValueType::kString);
}

TEST(ValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).ToNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(1.5).ToNumeric(), 1.5);
  EXPECT_TRUE(std::isnan(Value("x").ToNumeric()));
  EXPECT_TRUE(std::isnan(Value::Null().ToNumeric()));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("abc").ToString(), "abc");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, EqualityIsTyped) {
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(3.0));  // int vs double
  EXPECT_NE(Value("3"), Value(int64_t{3}));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingNullNumericString) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
  EXPECT_LT(Value(int64_t{2}), Value(int64_t{3}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  // Numeric tie: int sorts before double.
  EXPECT_LT(Value(int64_t{2}), Value(2.0));
  EXPECT_FALSE(Value(2.0) < Value(int64_t{2}));
  // Irreflexive.
  EXPECT_FALSE(Value(int64_t{3}) < Value(int64_t{3}));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(Value(int64_t{9})), h(Value(int64_t{9})));
  EXPECT_EQ(h(Value("k")), h(Value("k")));
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(int64_t{1}));
  set.insert(Value(int64_t{1}));
  set.insert(Value("1"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace ida
