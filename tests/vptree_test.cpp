// Tests of the metric-space serving index (index/vptree.h, DESIGN.md §11):
// the certified metric core's symmetry / triangle / lower-bound properties
// over real training contexts, exact search equivalence against a brute
// scan, exclusion semantics, deterministic builds, and the index blob's
// serialize / validate round trip (malformed sections are rejected with a
// Status, never crashed on).
#include "index/vptree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "synth/generator.h"

namespace ida {
namespace {

ModelConfig IndexTestConfig() {
  ModelConfig config = DefaultNormalizedConfig();
  config.n_context_size = 3;
  config.theta_interest = -100.0;  // keep every state
  config.knn.distance_threshold = 0.25;
  return config;
}

// One trained model's contexts, prepared once for the whole suite.
class VpTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench_ = new SynthBenchmark(
        std::move(*GenerateBenchmark(SmallGeneratorOptions(21))));
    engine::Trainer trainer(IndexTestConfig());
    auto model = trainer.Fit(bench_->log, bench_->registry);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    ASSERT_GT(model->size(), 30u);
    model_ = new engine::TrainedModel(std::move(*model));
    prepared_ = new std::vector<FlatContext>();
    prepared_->reserve(model_->size());
    for (const TrainingSample& s : model_->samples()) {
      prepared_->push_back(SessionDistance::Prepare(s.context));
    }
  }
  static void TearDownTestSuite() {
    delete prepared_;
    delete model_;
    delete bench_;
  }

  static SessionDistance Metric() {
    return SessionDistance(IndexTestConfig().distance);
  }

  // The admitted-neighbor list the brute-force vote sees: all samples
  // (minus `exclude`) within `radius`, sorted by (distance, id), first k.
  static std::vector<std::pair<double, size_t>> BruteSearch(
      size_t query, int k, double radius, int exclude) {
    SessionDistance metric = Metric();
    TedWorkspace ws;
    std::vector<std::pair<double, size_t>> all;
    for (size_t i = 0; i < prepared_->size(); ++i) {
      if (exclude >= 0 && i == static_cast<size_t>(exclude)) continue;
      double d = metric.Distance((*prepared_)[query], (*prepared_)[i], &ws);
      if (d <= radius) all.emplace_back(d, i);
    }
    std::sort(all.begin(), all.end());
    if (all.size() > static_cast<size_t>(k)) all.resize(static_cast<size_t>(k));
    return all;
  }

  static SynthBenchmark* bench_;
  static engine::TrainedModel* model_;
  static std::vector<FlatContext>* prepared_;
};

SynthBenchmark* VpTreeTest::bench_ = nullptr;
engine::TrainedModel* VpTreeTest::model_ = nullptr;
std::vector<FlatContext>* VpTreeTest::prepared_ = nullptr;

TEST_F(VpTreeTest, CoreDistanceIsSymmetricAndBoundsTheServingTed) {
  SessionDistance metric = Metric();
  TedWorkspace ws;
  const size_t n = std::min<size_t>(prepared_->size(), 24);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double core = index::CoreTreeEditDistance(
          (*prepared_)[i], (*prepared_)[j], metric.options(), &ws);
      double core_rev = index::CoreTreeEditDistance(
          (*prepared_)[j], (*prepared_)[i], metric.options(), &ws);
      double exact =
          metric.TreeEditDistance((*prepared_)[i], (*prepared_)[j], &ws);
      EXPECT_EQ(core, core_rev) << "asymmetric core at (" << i << "," << j
                                << ")";
      // The soundness invariant the whole pruning scheme rests on: the
      // metric core never exceeds the serving TED, bitwise.
      EXPECT_LE(core, exact) << "core overshoots at (" << i << "," << j << ")";
      EXPECT_GE(core, 0.0);
      if (i == j) {
        EXPECT_EQ(core, 0.0);
      }
    }
  }
}

TEST_F(VpTreeTest, CoreDistanceSatisfiesTheTriangleInequality) {
  SessionDistance metric = Metric();
  TedWorkspace ws;
  const size_t n = std::min<size_t>(prepared_->size(), 14);
  auto core = [&](size_t a, size_t b) {
    return index::CoreTreeEditDistance((*prepared_)[a], (*prepared_)[b],
                                       metric.options(), &ws);
  };
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      for (size_t c = 0; c < n; ++c) {
        // 1e-9 relative slack: the index deflates its bounds by the same
        // margin, so this is the inequality it actually relies on.
        EXPECT_LE(core(a, c), (core(a, b) + core(b, c)) * (1.0 + 1e-9))
            << "triangle violated at (" << a << "," << b << "," << c << ")";
      }
    }
  }
}

TEST_F(VpTreeTest, SearchMatchesBruteForceBitwise) {
  SessionDistance metric = Metric();
  index::VpTree tree = index::VpTree::Build(*prepared_, metric);
  ASSERT_EQ(tree.size(), prepared_->size());
  TedWorkspace ws;
  std::vector<std::pair<double, size_t>> got;
  index::IndexStats stats;
  for (size_t q = 0; q < prepared_->size(); ++q) {
    for (int k : {1, 3, 7}) {
      for (double radius : {0.1, 0.25, 1.0}) {
        tree.Search((*prepared_)[q], *prepared_, metric, k, radius,
                    /*exclude=*/-1, &ws, &got, &stats);
        std::vector<std::pair<double, size_t>> want =
            BruteSearch(q, k, radius, /*exclude=*/-1);
        ASSERT_EQ(got.size(), want.size())
            << "q=" << q << " k=" << k << " radius=" << radius;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].second, want[i].second);
          EXPECT_EQ(got[i].first, want[i].first);  // bitwise
        }
      }
    }
  }
  // The point of the index: it pruned a real fraction of the exact DPs
  // (a brute scan would evaluate the full training set per search).
  EXPECT_LT(stats.exact_teds, stats.searches * prepared_->size());
  EXPECT_GT(stats.lb_pruned + stats.triangle_pruned + stats.subtree_pruned,
            0u);
}

TEST_F(VpTreeTest, SearchHonorsExclusion) {
  SessionDistance metric = Metric();
  index::VpTree tree = index::VpTree::Build(*prepared_, metric);
  TedWorkspace ws;
  std::vector<std::pair<double, size_t>> got;
  for (size_t q = 0; q < std::min<size_t>(prepared_->size(), 16); ++q) {
    tree.Search((*prepared_)[q], *prepared_, metric, 5, 0.25,
                /*exclude=*/static_cast<int>(q), &ws, &got);
    std::vector<std::pair<double, size_t>> want =
        BruteSearch(q, 5, 0.25, static_cast<int>(q));
    ASSERT_EQ(got.size(), want.size()) << "q=" << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NE(got[i].second, q);
      EXPECT_EQ(got[i].second, want[i].second);
      EXPECT_EQ(got[i].first, want[i].first);
    }
  }
}

TEST_F(VpTreeTest, BuildIsDeterministic) {
  SessionDistance metric = Metric();
  index::VpTree a = index::VpTree::Build(*prepared_, metric);
  index::VpTree b = index::VpTree::Build(*prepared_, metric);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST_F(VpTreeTest, SerializeRoundTripsAndServesIdentically) {
  SessionDistance metric = Metric();
  index::VpTree tree = index::VpTree::Build(*prepared_, metric);
  std::string blob = tree.Serialize();
  auto loaded = index::VpTree::Deserialize(blob, prepared_->size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), tree.size());
  EXPECT_EQ(loaded->num_nodes(), tree.num_nodes());
  EXPECT_EQ(loaded->Serialize(), blob);
  TedWorkspace ws;
  std::vector<std::pair<double, size_t>> got, want;
  for (size_t q = 0; q < std::min<size_t>(prepared_->size(), 12); ++q) {
    tree.Search((*prepared_)[q], *prepared_, metric, 7, 0.25, -1, &ws, &want);
    loaded->Search((*prepared_)[q], *prepared_, metric, 7, 0.25, -1, &ws,
                   &got);
    EXPECT_EQ(got, want);
  }
}

TEST_F(VpTreeTest, EmptyTreeIsServedAndRoundTrips) {
  SessionDistance metric = Metric();
  index::VpTree tree = index::VpTree::Build({}, metric);
  EXPECT_TRUE(tree.empty());
  TedWorkspace ws;
  std::vector<std::pair<double, size_t>> got = {{0.0, 0}};
  tree.Search((*prepared_)[0], {}, metric, 3, 1.0, -1, &ws, &got);
  EXPECT_TRUE(got.empty());
  auto loaded = index::VpTree::Deserialize(tree.Serialize(), 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(VpTreeTest, MalformedBlobsAreRejectedNotCrashedOn) {
  SessionDistance metric = Metric();
  index::VpTree tree = index::VpTree::Build(*prepared_, metric);
  const std::string blob = tree.Serialize();
  const size_t n = prepared_->size();

  // Every truncation point fails cleanly.
  for (size_t len = 0; len < blob.size(); len += 3) {
    auto r = index::VpTree::Deserialize(blob.substr(0, len), n);
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes accepted";
  }
  // Trailing garbage is not silently ignored.
  EXPECT_FALSE(index::VpTree::Deserialize(blob + "x", n).ok());
  // Sample-count mismatch with the surrounding artifact.
  EXPECT_FALSE(index::VpTree::Deserialize(blob, n + 1).ok());
  EXPECT_FALSE(index::VpTree::Deserialize(blob, 0).ok());
  // A hostile node count cannot trigger a huge allocation or a crash.
  std::string bad = blob;
  uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bad.data() + 12, &huge, sizeof(huge));
  EXPECT_FALSE(index::VpTree::Deserialize(bad, n).ok());
  // A corrupted header sample count disagrees with the artifact's.
  bad = blob;
  uint64_t wrong = static_cast<uint64_t>(n) + 7;
  std::memcpy(bad.data(), &wrong, sizeof(wrong));
  EXPECT_FALSE(index::VpTree::Deserialize(bad, n).ok());
  // Zeroing a chunk of the node table breaks id coverage / link validity.
  bad = blob;
  std::fill(bad.begin() + 16, bad.begin() + 56, '\0');
  EXPECT_FALSE(index::VpTree::Deserialize(bad, n).ok());
}

}  // namespace
}  // namespace ida
