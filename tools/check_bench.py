#!/usr/bin/env python3
"""Bench-regression gate for the serve-SLO harness (DESIGN.md §15).

Compares a candidate loadgen JSON-lines output against a checked-in
baseline (BENCH_serve_slo.json) and fails when serving latency or
throughput regressed beyond the tolerance band:

    tools/check_bench.py --baseline BENCH_serve_slo.json \
        --candidate /tmp/serve_slo.json \
        [--max-p99-ratio 2.5] [--min-throughput-ratio 0.4]

Lines are matched by their (bench, mode, run) key, so a baseline with a
"paced" and an "unthrottled" replay line gates both runs independently.
For every matched pair the gate checks:

  * candidate errors == 0,
  * candidate advise-service p99 <= baseline p99 * max-p99-ratio,
  * candidate throughput >= baseline * min-throughput-ratio (both
    events/sec and advise qps).

The band is deliberately wide: CI machines are noisy, and the absolute
SLO verdict emitted by loadgen itself (--slo-p99-us) covers the "is this
fast enough at all" question. This gate only catches order-of-magnitude
regressions such as an accidentally disabled index or a serialization
stall on the advise path. Only stdlib is used.
"""

import argparse
import json
import sys


def load_lines(path):
    """Parses a JSON-lines file, returning the list of parsed objects."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                out.append(json.loads(raw))
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"{path}:{lineno}: not valid JSON ({err}): {raw[:120]}"
                )
    return out


def replay_lines(lines):
    """Maps (bench, mode, run) -> line for the replay measurement lines."""
    keyed = {}
    for line in lines:
        if line.get("mode") != "replay":
            continue
        key = (line.get("bench"), line.get("mode"), line.get("run"))
        keyed[key] = line
    return keyed


def check_pair(key, base, cand, args, failures):
    """Applies the tolerance band to one matched baseline/candidate pair."""
    label = "/".join(str(k) for k in key)

    errors = cand.get("errors", 0)
    if errors != 0:
        failures.append(f"{label}: candidate reports {errors} replay errors")

    base_p99 = base.get("advise_service_us", {}).get("p99")
    cand_p99 = cand.get("advise_service_us", {}).get("p99")
    if base_p99 is None or cand_p99 is None:
        failures.append(f"{label}: missing advise_service_us.p99")
    elif base_p99 > 0 and cand_p99 > base_p99 * args.max_p99_ratio:
        failures.append(
            f"{label}: advise p99 {cand_p99:.1f}us > "
            f"{args.max_p99_ratio:g}x baseline ({base_p99:.1f}us)"
        )

    for field in ("throughput_events_per_sec", "advise_qps"):
        base_v = base.get(field)
        cand_v = cand.get(field)
        if base_v is None or cand_v is None:
            failures.append(f"{label}: missing {field}")
        elif base_v > 0 and cand_v < base_v * args.min_throughput_ratio:
            failures.append(
                f"{label}: {field} {cand_v:.1f} < "
                f"{args.min_throughput_ratio:g}x baseline ({base_v:.1f})"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=2.5,
        help="candidate p99 may be at most this multiple of the baseline",
    )
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.4,
        help="candidate throughput must be at least this fraction of the "
        "baseline",
    )
    args = parser.parse_args()

    baseline = replay_lines(load_lines(args.baseline))
    candidate = replay_lines(load_lines(args.candidate))
    if not baseline:
        raise SystemExit(f"{args.baseline}: no replay measurement lines")
    if not candidate:
        raise SystemExit(f"{args.candidate}: no replay measurement lines")

    failures = []
    matched = 0
    for key, base in sorted(baseline.items()):
        cand = candidate.get(key)
        if cand is None:
            failures.append(
                "/".join(str(k) for k in key) + ": missing from candidate"
            )
            continue
        matched += 1
        check_pair(key, base, cand, args, failures)

    # Determinism and verdict lines are authoritative in the candidate:
    # loadgen already exits nonzero on them, but double-check here so a
    # tee'd file can be gated standalone.
    for line in load_lines(args.candidate):
        if line.get("config") == "determinism" and not line.get(
            "bitwise_identical", True
        ):
            failures.append("candidate determinism check failed")
        if line.get("config") == "verdict" and not line.get("ok", True):
            failures.append("candidate verdict line reports ok=false")

    if failures:
        print(f"check_bench: FAIL ({matched} run(s) compared)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"check_bench: OK ({matched} run(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
