#!/usr/bin/env python3
"""Bench-regression gate for the serve-SLO harness (DESIGN.md §15) and
the artifact load study (DESIGN.md §16).

Compares a candidate JSON-lines output against a checked-in baseline
(BENCH_serve_slo.json or BENCH_load.json) and fails when serving
latency, throughput, or artifact load time regressed beyond the
tolerance band:

    tools/check_bench.py --baseline BENCH_serve_slo.json \
        --candidate /tmp/serve_slo.json \
        [--max-p99-ratio 2.5] [--min-throughput-ratio 0.4]

    tools/check_bench.py --baseline BENCH_load.json \
        --candidate /tmp/bench_load.json [--max-load-ratio 3.0]

Replay lines are matched by their (bench, mode, run) key, so a baseline
with a "paced" and an "unthrottled" replay line gates both runs
independently. For every matched pair the gate checks:

  * candidate errors == 0,
  * candidate advise-service p99 <= baseline p99 * max-p99-ratio,
  * candidate throughput >= baseline * min-throughput-ratio (both
    events/sec and advise qps).

Load lines (bench_train_serve --load) are matched by (mode, n); each
candidate best_load_ms must stay within max-load-ratio of the baseline,
and the candidate's verdict line must report meets_target (the v4
mapped path's speedup over the v3 heap deserialize at the largest
size).

The band is deliberately wide: CI machines are noisy, and the absolute
SLO verdict emitted by loadgen itself (--slo-p99-us) covers the "is this
fast enough at all" question. This gate only catches order-of-magnitude
regressions such as an accidentally disabled index or a serialization
stall on the advise path. Only stdlib is used.
"""

import argparse
import json
import sys


def load_lines(path):
    """Parses a JSON-lines file, returning the list of parsed objects."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                out.append(json.loads(raw))
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"{path}:{lineno}: not valid JSON ({err}): {raw[:120]}"
                )
    return out


def replay_lines(lines):
    """Maps (bench, mode, run) -> line for the replay measurement lines."""
    keyed = {}
    for line in lines:
        if line.get("mode") != "replay":
            continue
        key = (line.get("bench"), line.get("mode"), line.get("run"))
        keyed[key] = line
    return keyed


def load_study_lines(lines):
    """Maps (mode, n) -> line for the artifact load measurement lines."""
    keyed = {}
    for line in lines:
        if line.get("bench") != "load" or line.get("config") == "verdict":
            continue
        key = (line.get("mode"), line.get("n"))
        keyed[key] = line
    return keyed


def check_load_pair(key, base, cand, args, failures):
    """Applies the load-time ratio gate to one (mode, n) pair."""
    label = "load/" + "/".join(str(k) for k in key)
    base_ms = base.get("best_load_ms")
    cand_ms = cand.get("best_load_ms")
    if base_ms is None or cand_ms is None:
        failures.append(f"{label}: missing best_load_ms")
    elif base_ms > 0 and cand_ms > base_ms * args.max_load_ratio:
        failures.append(
            f"{label}: best_load_ms {cand_ms:.3f} > "
            f"{args.max_load_ratio:g}x baseline ({base_ms:.3f})"
        )


def check_pair(key, base, cand, args, failures):
    """Applies the tolerance band to one matched baseline/candidate pair."""
    label = "/".join(str(k) for k in key)

    errors = cand.get("errors", 0)
    if errors != 0:
        failures.append(f"{label}: candidate reports {errors} replay errors")

    base_p99 = base.get("advise_service_us", {}).get("p99")
    cand_p99 = cand.get("advise_service_us", {}).get("p99")
    if base_p99 is None or cand_p99 is None:
        failures.append(f"{label}: missing advise_service_us.p99")
    elif base_p99 > 0 and cand_p99 > base_p99 * args.max_p99_ratio:
        failures.append(
            f"{label}: advise p99 {cand_p99:.1f}us > "
            f"{args.max_p99_ratio:g}x baseline ({base_p99:.1f}us)"
        )

    for field in ("throughput_events_per_sec", "advise_qps"):
        base_v = base.get(field)
        cand_v = cand.get(field)
        if base_v is None or cand_v is None:
            failures.append(f"{label}: missing {field}")
        elif base_v > 0 and cand_v < base_v * args.min_throughput_ratio:
            failures.append(
                f"{label}: {field} {cand_v:.1f} < "
                f"{args.min_throughput_ratio:g}x baseline ({base_v:.1f})"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=2.5,
        help="candidate p99 may be at most this multiple of the baseline",
    )
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.4,
        help="candidate throughput must be at least this fraction of the "
        "baseline",
    )
    parser.add_argument(
        "--max-load-ratio",
        type=float,
        default=3.0,
        help="candidate artifact load time may be at most this multiple of "
        "the baseline",
    )
    args = parser.parse_args()

    baseline_raw = load_lines(args.baseline)
    candidate_raw = load_lines(args.candidate)
    baseline = replay_lines(baseline_raw)
    candidate = replay_lines(candidate_raw)
    baseline_load = load_study_lines(baseline_raw)
    candidate_load = load_study_lines(candidate_raw)
    if not baseline and not baseline_load:
        raise SystemExit(f"{args.baseline}: no measurement lines")
    if baseline and not candidate:
        raise SystemExit(f"{args.candidate}: no replay measurement lines")
    if baseline_load and not candidate_load:
        raise SystemExit(f"{args.candidate}: no load measurement lines")

    failures = []
    matched = 0
    for key, base in sorted(baseline.items()):
        cand = candidate.get(key)
        if cand is None:
            failures.append(
                "/".join(str(k) for k in key) + ": missing from candidate"
            )
            continue
        matched += 1
        check_pair(key, base, cand, args, failures)

    for key, base in sorted(
        baseline_load.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))
    ):
        cand = candidate_load.get(key)
        if cand is None:
            failures.append(
                "load/" + "/".join(str(k) for k in key)
                + ": missing from candidate"
            )
            continue
        matched += 1
        check_load_pair(key, base, cand, args, failures)

    # Determinism and verdict lines are authoritative in the candidate:
    # loadgen already exits nonzero on them, but double-check here so a
    # tee'd file can be gated standalone.
    for line in candidate_raw:
        if line.get("config") == "determinism" and not line.get(
            "bitwise_identical", True
        ):
            failures.append("candidate determinism check failed")
        if line.get("config") == "verdict" and not line.get("ok", True):
            failures.append("candidate verdict line reports ok=false")
        if (
            line.get("bench") == "load"
            and line.get("config") == "verdict"
            and not line.get("meets_target", True)
        ):
            failures.append(
                "candidate load verdict misses the mapped-load speedup "
                f"target ({line.get('mmap_speedup_vs_v3_heap')}x < "
                f"{line.get('target_speedup')}x)"
            )

    if failures:
        print(f"check_bench: FAIL ({matched} run(s) compared)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"check_bench: OK ({matched} run(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
