#!/usr/bin/env bash
# clang-format check over the enforcement allowlist (runs in CI's format
# job and locally). Deliberately allowlist-based: the repo predates the
# .clang-format file, and mass-reformatting would destroy blame and churn
# every open branch. Only files listed in tools/format_allowlist.txt are
# checked; add files as you touch them.
#
# Usage: tools/check_format.sh [repo-root]
#   exit 0: all listed files formatted (or clang-format unavailable: skip)
#   exit 1: at least one file needs formatting
#   exit 2: setup error (missing allowlist / listed file absent)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

note() { printf '%s\n' "$*" >&2; }

fmt="${CLANG_FORMAT:-clang-format}"
if ! command -v "$fmt" >/dev/null 2>&1; then
  # The dev container does not ship clang-format; CI installs it. Skipping
  # locally is safe because CI is the enforcement point.
  note "check_format: $fmt not found; skipping (CI enforces)"
  exit 0
fi

allowlist="tools/format_allowlist.txt"
if [ ! -f "$allowlist" ]; then
  note "check_format: $allowlist missing"
  exit 2
fi

failures=0
checked=0
while IFS= read -r file; do
  case "$file" in ""|"#"*) continue ;; esac
  if [ ! -f "$file" ]; then
    note "check_format: $file listed in $allowlist but not on disk"
    exit 2
  fi
  checked=$((checked + 1))
  if ! "$fmt" --dry-run --Werror "$file" >/dev/null 2>&1; then
    note "check_format: $file needs formatting (run: $fmt -i $file)"
    failures=$((failures + 1))
  fi
done < "$allowlist"

if [ "$failures" -gt 0 ]; then
  note "check_format: $failures of $checked file(s) need formatting"
  exit 1
fi
note "check_format: OK ($checked file(s))"
