#!/usr/bin/env bash
# Documentation lint for the repo (runs in CI's docs job and locally):
#
#   1. Markdown link check — every relative link target in the tracked
#      *.md files must exist on disk (external http(s) links are skipped:
#      no network in CI).
#   2. Header doc-comment lint — every public header under src/engine/
#      and src/obs/ must open with a file-level comment, and every
#      top-level class/struct declaration in it must be directly preceded
#      by a /// doc comment.
#   3. Layer-map completeness — every library/executable target declared
#      in src/**/CMakeLists.txt must appear in DESIGN.md's module
#      inventory (the "System inventory" table), so the architecture doc
#      can never silently fall behind the build.
#   4. Bench-baseline coverage — every checked-in BENCH_*.json baseline in
#      the repo root must be mentioned in EXPERIMENTS.md, so each CI
#      regression gate has a documented recipe for regenerating its
#      baseline.
#   5. Lint-rule coverage — every rule id registered in ida_lint's
#      Rules() table (tools/ida_lint/lint.cc) must appear in DESIGN.md,
#      so the §12 rule documentation can never fall behind the checker.
#
# Usage: tools/docs_lint.sh [repo-root]   (defaults to the script's repo)
#        tools/docs_lint.sh --self-test   (negative test: seeds a sandbox
#          repo with one violation of every rule and asserts the linter
#          catches each of them, then that a clean sandbox passes — run by
#          CI's docs job so a silently broken checker cannot green-light
#          broken docs)
set -u

note() { printf '%s\n' "$*" >&2; }

self_test() {
  sandbox="$(mktemp -d)"
  trap 'rm -rf "$sandbox"' EXIT
  mkdir -p "$sandbox/src/engine"

  # One violation per rule.
  printf '[gone](missing-file.md)\n' > "$sandbox/README.md"
  {
    printf 'class Undocumented {\n'   # rule 2b: no /// above, and since it
    printf '};\n'                     # is line 1, no file comment either
  } > "$sandbox/src/engine/bad.h"
  printf 'add_library(ida_ghost ghost.cc)\n' \
    > "$sandbox/src/engine/CMakeLists.txt"
  printf '# Design\nNo inventory row for the ghost target.\n' \
    > "$sandbox/DESIGN.md"
  printf '{"bench":"ghost"}\n' > "$sandbox/BENCH_ghost.json"
  printf '# Experiments\nNo mention of the ghost baseline.\n' \
    > "$sandbox/EXPERIMENTS.md"
  mkdir -p "$sandbox/tools/ida_lint"
  {
    printf '  static const std::vector<RuleInfo> kRules = {\n'
    printf '      {"phantom-rule", "a rule DESIGN.md never mentions"},\n'
    printf '  };\n'
  } > "$sandbox/tools/ida_lint/lint.cc"

  out="$("$0" "$sandbox" 2>&1)"
  status=$?
  bad=0
  [ "$status" -eq 1 ] || { note "self-test: expected exit 1, got $status"; bad=1; }
  for want in 'broken link' 'missing file-level comment' \
              'without a preceding doc comment' 'not in DESIGN.md' \
              'not mentioned in EXPERIMENTS.md' \
              'not documented in DESIGN.md'; do
    case "$out" in
      *"$want"*) ;;
      *) note "self-test: expected a finding matching '$want'"; bad=1 ;;
    esac
  done

  # And the same sandbox, fixed, must pass.
  printf '[here](DESIGN.md)\n' > "$sandbox/README.md"
  {
    printf '// A documented header.\n'
    printf '/// A documented class.\n'
    printf 'class Documented {\n};\n'
  } > "$sandbox/src/engine/bad.h"
  printf '# Design\nThe `ida_ghost` target and the `phantom-rule` rule.\n' \
    > "$sandbox/DESIGN.md"
  printf '# Experiments\nRegenerate `BENCH_ghost.json` like so.\n' \
    > "$sandbox/EXPERIMENTS.md"
  if ! "$0" "$sandbox" >/dev/null 2>&1; then
    note "self-test: clean sandbox should pass"
    bad=1
  fi

  if [ "$bad" -ne 0 ]; then
    note "docs_lint --self-test: FAILED"
    exit 1
  fi
  note "docs_lint --self-test: OK"
  exit 0
}

[ "${1:-}" = "--self-test" ] && self_test

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2
failures=0

# --- 1. Relative markdown links -------------------------------------------
# Matches [text](target) and extracts target; ignores http(s), mailto and
# pure #anchors. Anchors on local targets (FILE.md#section) are stripped
# before the existence check.
while IFS=: read -r file target; do
  case "$target" in
    http://*|https://*|mailto:*|"#"*) continue ;;
  esac
  path="${target%%#*}"
  [ -z "$path" ] && continue
  # Links are resolved relative to the file that contains them.
  base="$(dirname "$file")"
  if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
    note "docs_lint: $file: broken link -> $target"
    failures=$((failures + 1))
  fi
done < <(grep -oHE '\[[^]]*\]\([^) ]+\)' ./*.md docs/*.md 2>/dev/null |
  sed -E 's/^([^:]+):\[[^]]*\]\(([^)]+)\)$/\1:\2/')

# --- 2. Header doc comments -----------------------------------------------
for header in src/engine/*.h src/obs/*.h; do
  [ -e "$header" ] || continue
  # File-level comment: the first line must start a // comment block.
  if ! head -n 1 "$header" | grep -qE '^//'; then
    note "docs_lint: $header: missing file-level comment on line 1"
    failures=$((failures + 1))
  fi
  # Top-level type declarations need a /// doc comment directly above.
  # (Column-0 declarations only, so nested/member types are exempt.)
  while IFS=: read -r lineno _; do
    prev=$((lineno - 1))
    if ! sed -n "${prev}p" "$header" | grep -qE '^(///|//)'; then
      note "docs_lint: $header:$lineno: type declaration without a" \
           "preceding doc comment"
      failures=$((failures + 1))
    fi
  done < <(grep -nE '^(class|struct) [A-Za-z_]+( final)?( :[^:]| \{|;)' \
    "$header")
done

# --- 3. CMake targets vs DESIGN.md layer map ------------------------------
# Every target declared under src/ must be documented in DESIGN.md. The
# report is per CMakeLists.txt file so a failure points at the module that
# grew a target without a matching inventory row.
if [ ! -f DESIGN.md ]; then
  note "docs_lint: DESIGN.md missing; cannot check the layer map"
  failures=$((failures + 1))
else
  for cml in src/*/CMakeLists.txt src/*/*/CMakeLists.txt; do
    [ -e "$cml" ] || continue
    missing=""
    while read -r target; do
      [ -z "$target" ] && continue
      if ! grep -qE "\`$target\`" DESIGN.md; then
        missing="$missing $target"
      fi
    done < <(grep -oE 'add_(library|executable)\( *[A-Za-z_0-9]+' "$cml" |
      sed -E 's/add_(library|executable)\( *//')
    if [ -n "$missing" ]; then
      note "docs_lint: $cml: target(s) not in DESIGN.md layer map:$missing"
      failures=$((failures + 1))
    fi
  done
fi

# --- 4. Bench baselines vs EXPERIMENTS.md ---------------------------------
# A committed baseline without a regeneration recipe is unmaintainable:
# the first legitimate perf change would have nothing to follow.
for baseline in BENCH_*.json; do
  [ -e "$baseline" ] || continue
  if [ ! -f EXPERIMENTS.md ] || ! grep -qF "$baseline" EXPERIMENTS.md; then
    note "docs_lint: $baseline: baseline not mentioned in EXPERIMENTS.md"
    failures=$((failures + 1))
  fi
done

# --- 5. ida_lint rule ids vs DESIGN.md ------------------------------------
# Every rule registered in the checker must be documented: the §12 table
# is where a reviewer learns what a finding means and which invariant it
# protects.
if [ -f tools/ida_lint/lint.cc ] && [ -f DESIGN.md ]; then
  while read -r rule; do
    [ -z "$rule" ] && continue
    if ! grep -qE "\`$rule\`" DESIGN.md; then
      note "docs_lint: lint rule '$rule' not documented in DESIGN.md"
      failures=$((failures + 1))
    fi
  done < <(sed -n '/static const std::vector<RuleInfo> kRules/,/^  };/p' \
    tools/ida_lint/lint.cc | grep -oE '\{"[a-z0-9-]+"' | tr -d '{"')
fi

if [ "$failures" -gt 0 ]; then
  note "docs_lint: $failures problem(s) found"
  exit 1
fi
note "docs_lint: OK"
