// Implementation of the ida_lint checker. Stage one is deliberately
// file-local and token-based: each rule is cheap, predictable, and pinned
// by fixtures in tests/lint_test.cpp, which is what makes the checker
// itself trustworthy enough to gate CI. Stage two (LintProject) reuses the
// same lexical machinery across the whole file set for the semantic
// passes: lock-discipline, module layering and the suppression audit.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

namespace ida::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

// A file split into physical lines, three times: the raw text (for the
// doc-comment rule and #include parsing), a code view with comments and
// string/character literals blanked out (so tokens inside them never
// trigger a rule), and a comment view with everything *but* comment text
// blanked (so suppression directives are only honored in comments, never
// inside string literals). All views preserve line lengths, keeping
// columns aligned with the raw text.
struct Source {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when the '"' at `quote` opens a raw string literal: it is directly
// preceded by an encoding prefix ending in R (R, uR, UR, LR, u8R) that is
// itself a whole token.
bool IsRawStringQuote(const std::string& line, size_t quote) {
  static const char* kPrefixes[] = {"u8R", "uR", "UR", "LR", "R"};
  for (const char* prefix : kPrefixes) {
    size_t len = std::char_traits<char>::length(prefix);
    if (quote >= len && line.compare(quote - len, len, prefix) == 0 &&
        (quote == len || !IsIdentChar(line[quote - len - 1]))) {
      return true;
    }
  }
  return false;
}

// Fills the code and comment views. Handles //, /* */, "..." (with
// escapes), '...' and raw string literals R"delim(...)delim", which obey
// no escape rules and may span physical lines.
void StripCode(Source* src) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_end;  // the ")delim\"" that closes the active raw string
  for (const std::string& line : src->raw) {
    std::string code(line.size(), ' ');
    std::string comment(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            for (size_t j = i; j < line.size(); ++j) comment[j] = line[j];
            i = line.size();  // rest of the line is a comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"' && IsRawStringQuote(line, i)) {
            size_t open = line.find('(', i + 1);
            if (open == std::string::npos) {
              // Malformed (no delimiter opener on the line); degrade to a
              // plain string so scanning still terminates at EOL.
              code[i] = '"';
              state = State::kString;
            } else {
              raw_end = ")" + line.substr(i + 1, open - i - 1) + "\"";
              code[i] = '"';
              i = open;
              state = State::kRawString;
            }
          } else if (c == '"') {
            code[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            code[i] = '\'';
            state = State::kChar;
          } else {
            code[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else {
            comment[i] = c;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            code[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            code[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kRawString:
          if (line.compare(i, raw_end.size(), raw_end) == 0) {
            i += raw_end.size() - 1;
            code[i] = '"';
            state = State::kCode;
          }
          break;
      }
    }
    // Unterminated plain string/char literals do not span lines in valid
    // C++; raw strings and block comments do.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    src->code.push_back(std::move(code));
    src->comment.push_back(std::move(comment));
  }
}

Source BuildSource(std::string_view content) {
  Source src;
  src.raw = SplitLines(content);
  StripCode(&src);
  return src;
}

std::string Trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Suppressions: `ida-lint: allow(<rule-a>, <rule-b>)` in comment text on the
// finding's line or anywhere in the contiguous `//` comment block directly
// above it, so a multi-line justification can lead with the directive.
// ---------------------------------------------------------------------------

std::vector<std::string> AllowedRulesOn(const std::string& comment_line) {
  std::vector<std::string> rules;
  static const std::regex kAllow(R"(ida-lint:\s*allow\(([^)]*)\))");
  auto begin =
      std::sregex_iterator(comment_line.begin(), comment_line.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::stringstream list((*it)[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule = Trimmed(rule);
      if (!rule.empty()) rules.push_back(rule);
    }
  }
  return rules;
}

bool HasAllow(const std::string& comment_line, const std::string& rule) {
  for (const std::string& allowed : AllowedRulesOn(comment_line)) {
    if (allowed == rule) return true;
  }
  return false;
}

// The 0-based line indexes whose directives cover a finding on
// `line_index`: the line itself plus the contiguous `//` block above.
std::vector<size_t> SuppressorLines(const Source& src, size_t line_index) {
  std::vector<size_t> lines{line_index};
  for (size_t i = line_index; i > 0; --i) {
    if (Trimmed(src.raw[i - 1]).rfind("//", 0) != 0) break;
    lines.push_back(i - 1);
  }
  return lines;
}

bool IsSuppressed(const Source& src, size_t line_index,
                  const std::string& rule) {
  for (size_t li : SuppressorLines(src, line_index)) {
    if (HasAllow(src.comment[li], rule)) return true;
  }
  return false;
}

// A small builder so every rule emits through one path. Stage one applies
// suppression at emit time; the project stage collects raw findings first
// (the suppression audit needs to see what a directive would suppress) and
// filters at the end.
class Reporter {
 public:
  Reporter(std::string path, const Source& src, std::vector<Finding>* out,
           bool apply_suppression = true)
      : path_(std::move(path)),
        src_(src),
        out_(out),
        apply_suppression_(apply_suppression) {}

  void Report(size_t line_index, const std::string& rule,
              const std::string& message) {
    if (apply_suppression_ && IsSuppressed(src_, line_index, rule)) return;
    out_->push_back(
        Finding{path_, static_cast<int>(line_index) + 1, rule, message});
  }

 private:
  std::string path_;
  const Source& src_;
  std::vector<Finding>* out_;
  bool apply_suppression_;
};

// ---------------------------------------------------------------------------
// Declaration tracking
// ---------------------------------------------------------------------------

// Reads the identifier starting at `pos` (after skipping whitespace,
// `*`/`&` and type qualifiers / multi-word type keywords), or returns ""
// when none starts there.
std::string ReadDeclaratorName(const std::string& line, size_t* pos) {
  static const std::set<std::string> kTypeWords = {
      "const", "unsigned", "signed", "long", "int", "short", "char", "auto"};
  size_t i = *pos;
  std::string name;
  while (i < line.size()) {
    char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '*' ||
        c == '&') {
      ++i;
      continue;
    }
    if (!IsIdentChar(c) ||
        std::isdigit(static_cast<unsigned char>(c)) != 0) {
      break;
    }
    size_t start = i;
    while (i < line.size() && IsIdentChar(line[i])) ++i;
    std::string word = line.substr(start, i - start);
    if (kTypeWords.count(word) > 0) continue;  // part of the type, not a name
    name = word;
    break;
  }
  *pos = i;
  return name;
}

// Collects names declared with a matching type on one code line: for
// `kFloatWord` that is `double x`, `float* f`, `double a = 0.0, b = 1.0`,
// `double arr[4]` and `double F(...)` (a call to F yields a double, so
// comparing its result with == is just as suspect). The same walker also
// collects integer-typed declarations so a name reused with both type
// families in one file (a common local like `m`) can be treated as
// ambiguous instead of flagged.
const std::regex& FloatWordRegex() {
  static const std::regex kFloatWord(R"((\bdouble\b|\bfloat\b))");
  return kFloatWord;
}

const std::regex& IntegerWordRegex() {
  static const std::regex kIntegerWord(
      R"(\b(int|long|short|unsigned|bool|char|size_t|ptrdiff_t|u?int(8|16|32|64)_t)\b)");
  return kIntegerWord;
}

void CollectTypedDecls(const std::string& line, const std::regex& type_word,
                       std::set<std::string>* out) {
  for (auto it = std::sregex_iterator(line.begin(), line.end(), type_word);
       it != std::sregex_iterator(); ++it) {
    size_t pos = static_cast<size_t>(it->position(0) + it->length(0));
    while (true) {
      std::string name = ReadDeclaratorName(line, &pos);
      if (name.empty()) break;
      out->insert(name);
      // Skip the initializer / parameter list up to a top-level comma
      // (next declarator) or the end of this declaration.
      int depth = 0;
      bool more = false;
      while (pos < line.size()) {
        char c = line[pos];
        if (c == '(' || c == '[' || c == '{') {
          ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
          if (depth == 0) break;  // closed the enclosing context
          --depth;
        } else if (depth == 0 && c == ',') {
          ++pos;
          more = true;
          break;
        } else if (depth == 0 && c == ';') {
          break;
        }
        ++pos;
      }
      if (!more) break;
    }
  }
}

void CollectFloatDecls(const std::string& line, std::set<std::string>* out) {
  static const std::regex kFloatVector(
      R"(vector\s*<\s*(?:double|float)\s*>\s*[*&]?\s*([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(line.begin(), line.end(), kFloatVector);
       it != std::sregex_iterator(); ++it) {
    out->insert((*it)[1].str());
  }
  CollectTypedDecls(line, FloatWordRegex(), out);
}

// Collects names declared as std::unordered_map / std::unordered_set.
// Declarations may wrap across lines inside the template argument list, so
// this walks the whole file; the reported declaration line is where the
// variable name lands.
struct UnorderedDecl {
  std::string name;
  size_t line_index;
};

std::vector<UnorderedDecl> CollectUnorderedDecls(const Source& src) {
  std::vector<UnorderedDecl> decls;
  static const std::regex kWord(
      R"(\bunordered_(?:map|set|multimap|multiset)\b)");
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kWord);
         it != std::sregex_iterator(); ++it) {
      size_t row = li;
      size_t pos = static_cast<size_t>(it->position(0) + it->length(0));
      // Walk the balanced template argument list, across lines if needed.
      int angle = 0;
      bool saw_args = false;
      while (row < src.code.size()) {
        const std::string& cur = src.code[row];
        for (; pos < cur.size(); ++pos) {
          char c = cur[pos];
          if (c == '<') {
            ++angle;
            saw_args = true;
          } else if (c == '>') {
            --angle;
          } else if (angle == 0 && saw_args &&
                     std::isspace(static_cast<unsigned char>(c)) == 0) {
            break;
          } else if (!saw_args &&
                     std::isspace(static_cast<unsigned char>(c)) == 0) {
            break;  // bare mention without template args — not a decl
          }
        }
        if (pos < cur.size() || !saw_args) break;
        ++row;
        pos = 0;
        if (row - li > 8) break;  // runaway; declarations are short
      }
      if (!saw_args || angle != 0 || row >= src.code.size()) continue;
      std::string name = ReadDeclaratorName(src.code[row], &pos);
      if (!name.empty()) decls.push_back(UnorderedDecl{name, row});
    }
  }
  return decls;
}

// ---------------------------------------------------------------------------
// Operand extraction for float-eq
// ---------------------------------------------------------------------------

// Walks left from `pos` (exclusive) over one postfix expression:
// identifier chains with ::/./-> and balanced ()/[] suffixes.
std::string LeftOperand(const std::string& line, size_t pos) {
  size_t end = pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(line[end - 1])) != 0) {
    --end;
  }
  size_t i = end;
  while (i > 0) {
    char c = line[i - 1];
    if (c == ')' || c == ']') {
      char open = c == ')' ? '(' : '[';
      int depth = 0;
      while (i > 0) {
        char b = line[i - 1];
        if (b == c) ++depth;
        if (b == open && --depth == 0) {
          --i;
          break;
        }
        --i;
      }
    } else if (IsIdentChar(c) || c == '.' ||
               (c == ':' && i > 1 && line[i - 2] == ':') ||
               (c == '>' && i > 1 && line[i - 2] == '-')) {
      i -= (c == '>' || (c == ':' && line[i - 2] == ':')) ? 2 : 1;
    } else {
      break;
    }
  }
  return line.substr(i, end - i);
}

// Walks right from `pos` over one postfix expression (mirror of the above,
// plus numeric literals like 1.5e-3).
std::string RightOperand(const std::string& line, size_t pos) {
  size_t i = pos;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
  }
  size_t start = i;
  if (i < line.size() && (line[i] == '-' || line[i] == '+')) ++i;
  while (i < line.size()) {
    char c = line[i];
    if (c == '(' || c == '[') {
      char close = c == '(' ? ')' : ']';
      int depth = 0;
      while (i < line.size()) {
        if (line[i] == c) ++depth;
        if (line[i] == close && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
    } else if (IsIdentChar(c) || c == '.') {
      ++i;
      // Exponent signs inside numeric literals: 1e-9, 2.5E+3.
      if ((c == 'e' || c == 'E') && i < line.size() &&
          (line[i] == '-' || line[i] == '+') && i >= 2 &&
          std::isdigit(static_cast<unsigned char>(line[i - 2])) != 0) {
        ++i;
      }
    } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
      i += 2;
    } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
      i += 2;
    } else {
      break;
    }
  }
  return line.substr(start, i - start);
}

bool IsFloatLiteral(const std::string& token) {
  static const std::regex kFloat(
      R"(^[+-]?(\d+\.\d*|\.\d+|\d+\.?\d*[eE][+-]?\d+)[fFlL]?$)");
  return std::regex_match(token, kFloat);
}

// Reduces an operand to the identifier that determines its type under the
// file-local heuristic: strips trailing (...) / [...] groups, then takes
// the last ::/./-> path component. `votes[label]` -> votes;
// `xs.size()` -> size; `Apply(x)` -> Apply.
std::string OperandBase(std::string token) {
  while (!token.empty() && (token.back() == ')' || token.back() == ']')) {
    char close = token.back();
    char open = close == ')' ? '(' : '[';
    int depth = 0;
    size_t i = token.size();
    while (i > 0) {
      char c = token[--i];
      if (c == close) ++depth;
      if (c == open && --depth == 0) break;
    }
    token.resize(i);
  }
  size_t cut = token.find_last_of(".>:");
  if (cut != std::string::npos) token = token.substr(cut + 1);
  return token;
}

// ---------------------------------------------------------------------------
// Per-rule messages
// ---------------------------------------------------------------------------

const char* kUnorderedIterMsg =
    "iteration over an unordered container: the order is unspecified, so "
    "feeding it into serialization, vote tallies, or any output breaks the "
    "artifact-checksum and tie-order guarantees; iterate a sorted copy or "
    "annotate an order-independent use with ida-lint: allow(unordered-iter)";
const char* kRawRandomMsg =
    "raw randomness source: all randomness must flow through the seeded "
    "ida::Rng in common/rng.h so runs are reproducible";
const char* kWallClockMsg =
    "wall-clock read: timestamps make core results non-reproducible; use "
    "std::chrono::steady_clock for durations and keep wall time out of "
    "library code";
const char* kFloatEqMsg =
    "floating-point ==/!= comparison: exact equality is only sanctioned in "
    "the bitwise-equivalence tests; use an epsilon, restructure, or "
    "annotate a deliberate exact comparison with ida-lint: allow(float-eq)";
const char* kIncludeGuardMsg =
    "header must open its code with #pragma once (a file-level comment may "
    "precede it)";
const char* kSanitizerHostileMsg =
    "construct breaks -fsanitize instrumentation (TSan/ASan cannot model "
    "it); join threads instead of detaching and avoid "
    "setjmp/longjmp/vfork/alloca";
const char* kByteCastMsg =
    "reinterpret_cast to a pointer type: re-typing raw bytes risks "
    "alignment and strict-aliasing UB on artifact buffers; read through "
    "binio::Reader or the sanctioned flat readers (common/binio.h, "
    "common/mapped_file.*, engine/artifact_v4.*), or annotate a vetted "
    "cast with ida-lint: allow(byte-cast)";

// ---------------------------------------------------------------------------
// File-local rules
// ---------------------------------------------------------------------------

void CheckUnorderedIter(const Source& src, Reporter* reporter) {
  std::set<std::string> names;
  for (const UnorderedDecl& d : CollectUnorderedDecls(src)) {
    names.insert(d.name);
  }
  if (names.empty()) return;
  static const std::regex kRangeFor(
      R"(for\s*\([^;()]*:\s*\*?&?([A-Za-z_]\w*)\s*\))");
  static const std::regex kIterLoop(R"(([A-Za-z_]\w*)\.c?begin\s*\(\s*\))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    std::smatch m;
    if (std::regex_search(line, m, kRangeFor) && names.count(m[1].str()) > 0) {
      reporter->Report(li, "unordered-iter", kUnorderedIterMsg);
      continue;
    }
    if (line.find("for") != std::string::npos &&
        std::regex_search(line, m, kIterLoop) &&
        names.count(m[1].str()) > 0) {
      reporter->Report(li, "unordered-iter", kUnorderedIterMsg);
    }
  }
}

void CheckRawRandom(const std::string& path, const Source& src,
                    Reporter* reporter) {
  // The Rng wrapper is the one sanctioned owner of a raw engine.
  if (path.find("common/rng.") != std::string::npos) return;
  static const std::regex kPatterns(
      R"(\brandom_device\b|(^|[^\w:])s?rand\s*\(|\b[dlm]rand48\b|\bmt19937(_64)?\b)");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (std::regex_search(src.code[li], kPatterns)) {
      reporter->Report(li, "raw-random", kRawRandomMsg);
    }
  }
}

void CheckWallClock(const Source& src, Reporter* reporter) {
  static const std::regex kPatterns(
      R"(\bsystem_clock\b|(^|[^\w])time\s*\(\s*(nullptr|NULL|0)\s*\)|\bgettimeofday\b|\blocaltime\b|\bgmtime(_r)?\b|\bctime\b|(^|[^\w])clock\s*\(\s*\))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (std::regex_search(src.code[li], kPatterns)) {
      reporter->Report(li, "wall-clock", kWallClockMsg);
    }
  }
}

void CheckFloatEq(const Source& src, Reporter* reporter) {
  std::set<std::string> floats;
  std::set<std::string> integers;
  for (const std::string& line : src.code) {
    CollectFloatDecls(line, &floats);
    CollectTypedDecls(line, IntegerWordRegex(), &integers);
  }
  // A name declared with both type families in the file (e.g. a local `m`
  // that is size_t in one function and double in another) is ambiguous
  // under the file-local heuristic; don't flag it.
  for (const std::string& name : integers) floats.erase(name);
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (size_t i = 0; i + 1 < line.size(); ++i) {
      bool is_eq = line[i] == '=' && line[i + 1] == '=';
      bool is_ne = line[i] == '!' && line[i + 1] == '=';
      if (!is_eq && !is_ne) continue;
      // Not part of <=, >=, ==, !=, += and friends on the left.
      if (i > 0 && (line[i - 1] == '=' || line[i - 1] == '<' ||
                    line[i - 1] == '>' || line[i - 1] == '!' ||
                    line[i - 1] == '+' || line[i - 1] == '-' ||
                    line[i - 1] == '*' || line[i - 1] == '/')) {
        continue;
      }
      if (i + 2 < line.size() && line[i + 2] == '=') continue;
      std::string lhs = LeftOperand(line, i);
      std::string rhs = RightOperand(line, i + 2);
      bool floaty = IsFloatLiteral(lhs) || IsFloatLiteral(rhs) ||
                    floats.count(OperandBase(lhs)) > 0 ||
                    floats.count(OperandBase(rhs)) > 0;
      if (floaty) {
        reporter->Report(li, "float-eq", kFloatEqMsg);
        break;  // one finding per line is enough
      }
      i += 1;
    }
  }
}

void CheckIncludeGuard(const Source& src, Reporter* reporter) {
  for (size_t li = 0; li < src.code.size(); ++li) {
    std::string code = Trimmed(src.code[li]);
    if (code.empty()) continue;
    if (code != "#pragma once") {
      reporter->Report(li, "include-guard", kIncludeGuardMsg);
    }
    return;
  }
  // A header with no code at all still lacks a guard.
  reporter->Report(0, "include-guard", kIncludeGuardMsg);
}

void CheckDocComment(const Source& src, Reporter* reporter) {
  if (src.raw.empty() || src.raw[0].rfind("//", 0) != 0) {
    reporter->Report(0, "doc-comment",
                     "header must open with a file-level // comment "
                     "describing what the file provides");
  }
  static const std::regex kTypeDecl(
      R"(^(class|struct)\s+[A-Za-z_]\w*( final)?\s*($|:[^:]|\{))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (!std::regex_search(src.code[li], kTypeDecl)) continue;
    // Walk up over template introducers and attributes to the doc line.
    size_t above = li;
    while (above > 0) {
      std::string prev = Trimmed(src.raw[above - 1]);
      if (prev.rfind("template", 0) == 0 || prev.rfind("[[", 0) == 0 ||
          prev.rfind(">", 0) == 0) {
        --above;
      } else {
        break;
      }
    }
    bool documented =
        above > 0 && Trimmed(src.raw[above - 1]).rfind("//", 0) == 0;
    if (!documented) {
      reporter->Report(li, "doc-comment",
                       "top-level type declaration without a preceding "
                       "/// doc comment");
    }
  }
}

void CheckSanitizerHostile(const Source& src, Reporter* reporter) {
  static const std::regex kPatterns(
      R"(\bsetjmp\b|\blongjmp\b|\bvfork\b|\balloca\s*\(|\.detach\s*\(\s*\))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (std::regex_search(src.code[li], kPatterns)) {
      reporter->Report(li, "sanitizer-hostile", kSanitizerHostileMsg);
    }
  }
}

void CheckByteCast(const std::string& path, const Source& src,
                   Reporter* reporter) {
  // The sanctioned byte-reading layer: the binio codec, the mmap wrapper,
  // and the v4 flat-artifact reader, where every cast sits behind the
  // bounds/alignment checks of the section directory.
  if (path.find("common/binio.h") != std::string::npos ||
      path.find("common/mapped_file.") != std::string::npos ||
      path.find("engine/artifact_v4.") != std::string::npos) {
    return;
  }
  static const std::regex kCastOpen(R"(\breinterpret_cast\s*<)");
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kCastOpen);
         it != std::sregex_iterator(); ++it) {
      // Collect the target type up to the matching '>', across a few
      // lines if the cast wraps.
      std::string target;
      size_t row = li;
      size_t pos = static_cast<size_t>(it->position(0) + it->length(0));
      int angle = 1;
      while (row < src.code.size() && angle > 0 && row - li <= 3) {
        const std::string& cur = src.code[row];
        for (; pos < cur.size() && angle > 0; ++pos) {
          if (cur[pos] == '<') ++angle;
          if (cur[pos] == '>' && --angle == 0) break;
          target.push_back(cur[pos]);
        }
        if (angle > 0) {
          ++row;
          pos = 0;
        }
      }
      // Only pointer targets re-type memory; integral targets such as
      // reinterpret_cast<uintptr_t> (pointer hashing) are harmless.
      if (target.find('*') != std::string::npos) {
        reporter->Report(li, "byte-cast", kByteCastMsg);
        break;  // one finding per line is enough
      }
    }
  }
}

bool IsHeaderPath(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// Runs every file-local rule on one source through `reporter`.
void RunFileChecks(const std::string& path, const Source& src,
                   Reporter* reporter) {
  CheckUnorderedIter(src, reporter);
  CheckRawRandom(path, src, reporter);
  CheckWallClock(src, reporter);
  CheckFloatEq(src, reporter);
  CheckSanitizerHostile(src, reporter);
  CheckByteCast(path, src, reporter);
  if (IsHeaderPath(path)) {
    CheckIncludeGuard(src, reporter);
    CheckDocComment(src, reporter);
  }
}

// ---------------------------------------------------------------------------
// Cross-file stage: shared project model
// ---------------------------------------------------------------------------

// One file of the project with everything the semantic passes need.
struct ProjectFile {
  std::string path;    // as reported
  std::string stem;    // path minus extension (scopes the bare-name check)
  std::string rel;     // path relative to src_root; "" when outside it
  std::string module;  // first component of rel; "" when none
  Source src;
  std::vector<std::pair<size_t, std::string>> includes;  // line, "target"
};

std::string PathStem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// `path` relative to `root` with '/' separators, or "" when not under it.
std::string RelativeTo(const std::string& root, const std::string& path) {
  if (root.empty()) return "";
  std::filesystem::path r = std::filesystem::path(root).lexically_normal();
  std::filesystem::path p = std::filesystem::path(path).lexically_normal();
  std::string rel = p.lexically_relative(r).generic_string();
  if (rel.empty() || rel == "." || rel.rfind("..", 0) == 0) return "";
  return rel;
}

std::vector<std::pair<size_t, std::string>> CollectIncludes(
    const Source& src) {
  std::vector<std::pair<size_t, std::string>> out;
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (size_t li = 0; li < src.raw.size(); ++li) {
    std::smatch m;
    if (std::regex_search(src.raw[li], m, kInclude)) {
      out.emplace_back(li, m[1].str());
    }
  }
  return out;
}

ProjectFile BuildProjectFile(const std::string& path,
                             std::string_view content,
                             const std::string& src_root) {
  ProjectFile f;
  f.path = path;
  f.stem = PathStem(path);
  f.rel = RelativeTo(src_root, path);
  size_t slash = f.rel.find('/');
  if (slash != std::string::npos) f.module = f.rel.substr(0, slash);
  f.src = BuildSource(content);
  f.includes = CollectIncludes(f.src);
  return f;
}

// ---------------------------------------------------------------------------
// Lock-discipline pass. Lexical approximation of clang -Wthread-safety:
// IDA_GUARDED_BY(mu) field declarations are collected project-wide, and
// every access to such a field is checked against the set of mutexes held
// in the enclosing scope (MutexLock / std::lock_guard / unique_lock /
// scoped_lock declarations, manual .lock()/.unlock(), and IDA_REQUIRES
// annotations on the enclosing function, resolved by name across files).
// Scopes are brace-tracked; a lambda body inherits the scopes it is
// written in. Bare member names are only checked in the declaring header
// and its same-stem sibling; `base.field` accesses are checked wherever
// `base` is declared with the field's owning type.
// ---------------------------------------------------------------------------

struct GuardedField {
  std::string name;
  std::string mutex;  // normalized guard expression, e.g. "mu_" or "mu"
  std::string owner;  // enclosing class/struct name ("" at file scope)
  std::string file;   // declaring file path
  size_t macro_line = 0;
  size_t name_line = 0;
  bool member_style = false;  // name ends in '_' => bare-access checking
};

// Map from function name to every mutex expression some declaration of
// that name requires (IDA_REQUIRES on the prototype or the definition).
// Keyed by bare name: a collision with an unannotated same-named function
// can only over-hold, which trades a missed finding for no false positive.
using RequiresTable = std::map<std::string, std::set<std::string>>;

// Content of the balanced paren group whose '(' is at line[open], or ""
// when it does not close on the same line.
std::string ParenContent(const std::string& line, size_t open) {
  int depth = 0;
  for (size_t i = open; i < line.size(); ++i) {
    if (line[i] == '(') {
      ++depth;
    } else if (line[i] == ')' && --depth == 0) {
      return line.substr(open + 1, i - open - 1);
    }
  }
  return "";
}

// Canonical spelling of a mutex expression: spaces out, -> folded to .,
// leading & and this. stripped, so `&shard.mu`, `this->mu_` and `mu_`
// compare the way a reader expects.
std::string NormalizeMutexExpr(const std::string& expr) {
  std::string tight;
  for (char c : expr) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) tight.push_back(c);
  }
  std::string dotted;
  for (size_t i = 0; i < tight.size(); ++i) {
    if (tight[i] == '-' && i + 1 < tight.size() && tight[i + 1] == '>') {
      dotted.push_back('.');
      ++i;
    } else {
      dotted.push_back(tight[i]);
    }
  }
  if (!dotted.empty() && dotted[0] == '&') dotted.erase(0, 1);
  if (dotted.rfind("this.", 0) == 0) dotted.erase(0, 5);
  return dotted;
}

std::vector<std::string> SplitTopLevelCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string part;
  while (std::getline(stream, part, ',')) {
    part = Trimmed(part);
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

// The identifier token immediately before column `col` of line `li` in the
// code view, skipping whitespace backwards across up to 3 lines (guarded
// declarations may wrap the annotation onto a continuation line).
bool PrecedingIdentifier(const Source& src, size_t li, size_t col,
                         std::string* name, size_t* name_line) {
  size_t row = li;
  size_t i = col;
  for (;;) {
    const std::string& line = src.code[row];
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(line[i - 1])) != 0) {
      --i;
    }
    if (i > 0) break;
    if (row == 0 || li - row >= 3) return false;
    --row;
    i = src.code[row].size();
  }
  const std::string& line = src.code[row];
  size_t end = i;
  while (i > 0 && IsIdentChar(line[i - 1])) --i;
  if (i == end) return false;
  *name = line.substr(i, end - i);
  *name_line = row;
  return true;
}

// Innermost named class/struct enclosing each line's start (brace scan
// over the code view; "" at namespace/function scope).
std::vector<std::string> EnclosingTypePerLine(const Source& src) {
  std::vector<std::string> result(src.code.size());
  struct Open {
    std::string name;
    int depth;
  };
  std::vector<Open> stack;
  int depth = 0;
  std::string pending;
  static const std::regex kType(R"(\b(class|struct)\s+([A-Za-z_]\w*))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    std::string innermost;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (!it->name.empty()) {
        innermost = it->name;
        break;
      }
    }
    result[li] = innermost;
    const std::string& line = src.code[li];
    std::map<size_t, std::string> names_at;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kType);
         it != std::sregex_iterator(); ++it) {
      names_at[static_cast<size_t>(it->position(0))] = (*it)[2].str();
    }
    for (size_t col = 0; col < line.size(); ++col) {
      auto found = names_at.find(col);
      if (found != names_at.end()) pending = found->second;
      char c = line[col];
      if (c == '{') {
        ++depth;
        stack.push_back(Open{pending, depth});
        pending.clear();
      } else if (c == '}') {
        if (!stack.empty() && stack.back().depth == depth) stack.pop_back();
        --depth;
      } else if (c == ';') {
        pending.clear();  // forward declaration
      }
    }
  }
  return result;
}

void CollectGuardedFields(const ProjectFile& f,
                          std::vector<GuardedField>* out) {
  std::vector<std::string> owner_at = EnclosingTypePerLine(f.src);
  static const char* kMacros[] = {"IDA_GUARDED_BY(", "IDA_PT_GUARDED_BY("};
  for (size_t li = 0; li < f.src.code.size(); ++li) {
    const std::string& line = f.src.code[li];
    if (Trimmed(line).rfind("#", 0) == 0) continue;  // the macro definitions
    for (const char* macro : kMacros) {
      size_t macro_len = std::char_traits<char>::length(macro);
      size_t pos = 0;
      while ((pos = line.find(macro, pos)) != std::string::npos) {
        size_t at = pos;
        size_t open = pos + macro_len - 1;
        pos = open;
        if (at > 0 && IsIdentChar(line[at - 1])) continue;
        std::string mu = ParenContent(line, open);
        if (mu.empty()) continue;
        GuardedField gf;
        if (!PrecedingIdentifier(f.src, li, at, &gf.name, &gf.name_line)) {
          continue;
        }
        gf.mutex = NormalizeMutexExpr(mu);
        gf.owner = owner_at[gf.name_line];
        gf.file = f.path;
        gf.macro_line = li;
        gf.member_style = !gf.name.empty() && gf.name.back() == '_';
        out->push_back(std::move(gf));
      }
    }
  }
}

// Scans backwards from the IDA_REQUIRES macro at (li, col) over optional
// trailing qualifiers and the balanced parameter list to the function
// name; "" when the shape is not a function signature.
std::string RequiresFunctionName(const Source& src, size_t li, size_t col) {
  size_t row = li;
  size_t i = col;
  auto skip_ws = [&]() -> bool {
    for (;;) {
      const std::string& line = src.code[row];
      while (i > 0 &&
             std::isspace(static_cast<unsigned char>(line[i - 1])) != 0) {
        --i;
      }
      if (i > 0) return true;
      if (row == 0 || li - row >= 8) return false;
      --row;
      i = src.code[row].size();
    }
  };
  if (!skip_ws()) return "";
  for (;;) {  // trailing qualifiers between ')' and the annotation
    const std::string& line = src.code[row];
    size_t end = i;
    size_t start = end;
    while (start > 0 && IsIdentChar(line[start - 1])) --start;
    if (start == end) break;
    std::string word = line.substr(start, end - start);
    if (word != "const" && word != "noexcept" && word != "override") break;
    i = start;
    if (!skip_ws()) return "";
  }
  if (src.code[row][i - 1] != ')') return "";
  int depth = 0;
  bool matched = false;
  while (!matched) {
    const std::string& line = src.code[row];
    while (i > 0) {
      char c = line[i - 1];
      --i;
      if (c == ')') ++depth;
      if (c == '(' && --depth == 0) {
        matched = true;
        break;
      }
    }
    if (matched) break;
    if (row == 0 || li - row >= 8) return "";
    --row;
    i = src.code[row].size();
  }
  if (!skip_ws()) return "";
  const std::string& line = src.code[row];
  size_t end = i;
  size_t start = end;
  while (start > 0 && IsIdentChar(line[start - 1])) --start;
  if (start == end) return "";
  return line.substr(start, end - start);
}

void CollectRequires(const ProjectFile& f, RequiresTable* table) {
  static const std::string kMacro = "IDA_REQUIRES(";
  for (size_t li = 0; li < f.src.code.size(); ++li) {
    const std::string& line = f.src.code[li];
    if (Trimmed(line).rfind("#", 0) == 0) continue;  // the macro definition
    size_t pos = 0;
    while ((pos = line.find(kMacro, pos)) != std::string::npos) {
      size_t at = pos;
      size_t open = pos + kMacro.size() - 1;
      pos = open;
      if (at > 0 && IsIdentChar(line[at - 1])) continue;
      std::string content = ParenContent(line, open);
      if (content.empty()) continue;
      std::string fn = RequiresFunctionName(f.src, li, at);
      if (fn.empty()) continue;
      for (const std::string& mu : SplitTopLevelCommas(content)) {
        (*table)[fn].insert(NormalizeMutexExpr(mu));
      }
    }
  }
}

void CheckLockDiscipline(const ProjectFile& f,
                         const std::vector<GuardedField>& all_fields,
                         const RequiresTable& requires_fns,
                         Reporter* reporter) {
  // Fields visible here: declared in this file or in an included one.
  std::vector<const GuardedField*> fields;
  for (const GuardedField& gf : all_fields) {
    bool visible = gf.file == f.path;
    for (size_t i = 0; !visible && i < f.includes.size(); ++i) {
      const std::string& target = f.includes[i].second;
      visible = gf.file == target || EndsWith(gf.file, "/" + target);
    }
    if (visible) fields.push_back(&gf);
  }
  if (fields.empty()) return;

  auto bare_checked = [&](const GuardedField& gf) {
    return gf.member_style &&
           (gf.file == f.path || PathStem(gf.file) == f.stem);
  };

  // Variables declared with a guarded owner type, for base.field accesses.
  std::map<std::string, std::set<std::string>> typed;
  for (const GuardedField* gf : fields) {
    if (gf->owner.empty() || typed.count(gf->owner) > 0) continue;
    std::regex decl("\\b" + gf->owner + "[\\s&*]+([A-Za-z_]\\w*)");
    std::set<std::string>& vars = typed[gf->owner];
    for (const std::string& line : f.src.code) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), decl);
           it != std::sregex_iterator(); ++it) {
        vars.insert((*it)[1].str());
      }
    }
  }

  static const std::regex kScopedLock(
      R"(\b(?:MutexLock|lock_guard|unique_lock|scoped_lock)\b[^();]*\(([^()]*)\))");
  static const std::regex kManualLock(
      R"(((?:[A-Za-z_]\w*)(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*(un)?lock\s*\(\s*\))");
  static const std::regex kCallable(R"(([A-Za-z_]\w*)\s*\()");

  std::vector<std::pair<std::string, int>> held;  // expr, scope depth
  int depth = 0;
  std::string pending;  // statement/signature text since the last ; { }

  auto held_has = [&](const std::string& expr) {
    for (const auto& h : held) {
      if (h.first == expr) return true;
    }
    return false;
  };
  auto enter_scope = [&]() {
    ++depth;
    for (auto it = std::sregex_iterator(pending.begin(), pending.end(),
                                        kCallable);
         it != std::sregex_iterator(); ++it) {
      auto found = requires_fns.find((*it)[1].str());
      if (found == requires_fns.end()) continue;
      for (const std::string& mu : found->second) held.emplace_back(mu, depth);
    }
    size_t rp = 0;
    static const std::string kReq = "IDA_REQUIRES(";
    while ((rp = pending.find(kReq, rp)) != std::string::npos) {
      std::string content = ParenContent(pending, rp + kReq.size() - 1);
      for (const std::string& mu : SplitTopLevelCommas(content)) {
        held.emplace_back(NormalizeMutexExpr(mu), depth);
      }
      ++rp;
    }
    pending.clear();
  };

  struct Event {
    size_t col;
    int kind;  // 0 = acquire, 1 = release, 2 = access
    std::string expr;
    const GuardedField* gf = nullptr;
  };

  for (size_t li = 0; li < f.src.code.size(); ++li) {
    const std::string& line = f.src.code[li];
    if (Trimmed(line).rfind("#", 0) == 0) continue;

    std::vector<Event> events;
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kScopedLock);
         it != std::sregex_iterator(); ++it) {
      for (const std::string& arg : SplitTopLevelCommas((*it)[1].str())) {
        events.push_back(Event{static_cast<size_t>(it->position(0)), 0,
                               NormalizeMutexExpr(arg), nullptr});
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kManualLock);
         it != std::sregex_iterator(); ++it) {
      events.push_back(Event{static_cast<size_t>(it->position(0)),
                             (*it)[2].matched ? 1 : 0,
                             NormalizeMutexExpr((*it)[1].str()), nullptr});
    }
    for (const GuardedField* gf : fields) {
      size_t pos = 0;
      while ((pos = line.find(gf->name, pos)) != std::string::npos) {
        size_t at = pos;
        size_t end = pos + gf->name.size();
        pos = end;
        if (end < line.size() && IsIdentChar(line[end])) continue;
        if (at > 0 && IsIdentChar(line[at - 1])) continue;
        if (f.path == gf->file &&
            (li == gf->macro_line || li == gf->name_line)) {
          continue;  // the declaration itself
        }
        bool dot = at >= 1 && line[at - 1] == '.';
        bool arrow = at >= 2 && line[at - 2] == '-' && line[at - 1] == '>';
        if (at >= 1 && line[at - 1] == ':') continue;  // qualified name
        if (dot || arrow) {
          size_t be = dot ? at - 1 : at - 2;
          size_t bs = be;
          while (bs > 0 && IsIdentChar(line[bs - 1])) --bs;
          if (bs == be) continue;  // complex base expression: out of reach
          std::string base = line.substr(bs, be - bs);
          if (base == "this") {
            if (bare_checked(*gf)) {
              events.push_back(Event{at, 2, gf->mutex, gf});
            }
          } else if (!gf->owner.empty() && typed.count(gf->owner) > 0 &&
                     typed[gf->owner].count(base) > 0) {
            events.push_back(Event{at, 2, base + "." + gf->mutex, gf});
          }
        } else if (bare_checked(*gf)) {
          events.push_back(Event{at, 2, gf->mutex, gf});
        }
      }
    }

    if (events.empty() && line.find('{') == std::string::npos &&
        line.find('}') == std::string::npos &&
        line.find(';') == std::string::npos) {
      pending += line;
      pending += ' ';
      continue;
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.col < b.col;
                     });
    size_t ei = 0;
    for (size_t col = 0; col <= line.size(); ++col) {
      for (; ei < events.size() && events[ei].col == col; ++ei) {
        const Event& e = events[ei];
        if (e.kind == 0) {
          held.emplace_back(e.expr, depth);
        } else if (e.kind == 1) {
          for (size_t h = held.size(); h > 0; --h) {
            if (held[h - 1].first == e.expr) {
              held.erase(held.begin() + static_cast<long>(h) - 1);
              break;
            }
          }
        } else if (!held_has(e.expr)) {
          reporter->Report(
              li, "lock-discipline",
              "field '" + e.gf->name + "' is declared IDA_GUARDED_BY(" +
                  e.gf->mutex + ") at " + e.gf->file + ":" +
                  std::to_string(e.gf->name_line + 1) +
                  " but is accessed without '" + e.expr +
                  "' held; acquire it in this scope (ida::MutexLock) or "
                  "mark the enclosing function IDA_REQUIRES");
        }
      }
      if (col == line.size()) break;
      char c = line[col];
      if (c == '{') {
        enter_scope();
      } else if (c == '}') {
        --depth;
        while (!held.empty() && held.back().second > depth) held.pop_back();
        pending.clear();
      } else if (c == ';') {
        pending.clear();
      } else {
        pending.push_back(c);
      }
    }
    pending += ' ';
  }
}

// ---------------------------------------------------------------------------
// Module-layering pass: the #include graph over src_root must stay inside
// the DAG declared in the layering table.
// ---------------------------------------------------------------------------

void CheckLayering(const std::vector<ProjectFile>& files,
                   const ProjectOptions& options,
                   std::vector<Finding>* out) {
  if (options.src_root.empty() || options.layering_table.empty()) return;
  std::string table_path =
      options.layering_path.empty() ? "layering.txt" : options.layering_path;

  std::map<std::string, std::set<std::string>> allowed;
  std::map<std::string, size_t> decl_line;
  std::vector<std::string> order;
  std::vector<std::string> table_lines = SplitLines(options.layering_table);
  for (size_t li = 0; li < table_lines.size(); ++li) {
    std::string line = table_lines[li];
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trimmed(line);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      out->push_back(Finding{table_path, static_cast<int>(li) + 1, "layering",
                             "malformed layering line: expected "
                             "'module: allowed-module ...'"});
      continue;
    }
    std::string mod = Trimmed(line.substr(0, colon));
    if (mod.empty() || allowed.count(mod) > 0) {
      out->push_back(Finding{table_path, static_cast<int>(li) + 1, "layering",
                             mod.empty() ? "layering line declares no module"
                                         : "module '" + mod +
                                               "' is declared twice"});
      continue;
    }
    order.push_back(mod);
    decl_line[mod] = li;
    std::set<std::string>& deps = allowed[mod];
    std::stringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) {
      if (dep != mod) deps.insert(dep);
    }
  }

  for (const std::string& mod : order) {
    for (const std::string& dep : allowed[mod]) {
      if (allowed.count(dep) == 0) {
        out->push_back(
            Finding{table_path, static_cast<int>(decl_line[mod]) + 1,
                    "layering",
                    "module '" + mod + "' allows undeclared module '" + dep +
                        "'"});
      }
    }
  }

  // The declared graph must be a DAG: depth-first search with an explicit
  // on-path set; the first back edge reports the whole cycle.
  std::map<std::string, int> color;  // 0 = new, 1 = on path, 2 = done
  std::vector<std::string> path;
  bool cycle_reported = false;
  std::function<void(const std::string&)> visit =
      [&](const std::string& mod) {
        if (cycle_reported || color[mod] == 2) return;
        if (color[mod] == 1) {
          std::string desc;
          size_t start = 0;
          while (start < path.size() && path[start] != mod) ++start;
          for (size_t i = start; i < path.size(); ++i) {
            desc += path[i] + " -> ";
          }
          desc += mod;
          out->push_back(
              Finding{table_path, static_cast<int>(decl_line[mod]) + 1,
                      "layering",
                      "layering table contains a cycle: " + desc});
          cycle_reported = true;
          return;
        }
        color[mod] = 1;
        path.push_back(mod);
        for (const std::string& dep : allowed[mod]) {
          if (allowed.count(dep) > 0) visit(dep);
        }
        path.pop_back();
        color[mod] = 2;
      };
  for (const std::string& mod : order) visit(mod);

  for (const ProjectFile& f : files) {
    if (f.module.empty()) continue;
    if (allowed.count(f.module) == 0) {
      out->push_back(Finding{f.path, 1, "layering",
                             "module '" + f.module + "' (" + f.rel +
                                 ") is not declared in " + table_path});
      continue;
    }
    for (const auto& [li, target] : f.includes) {
      size_t slash = target.find('/');
      if (slash == std::string::npos) continue;  // local / non-module
      std::string to = target.substr(0, slash);
      if (allowed.count(to) == 0) continue;  // not a src/ module
      if (to == f.module) continue;
      if (allowed[f.module].count(to) == 0) {
        out->push_back(
            Finding{f.path, static_cast<int>(li) + 1, "layering",
                    "#include \"" + target + "\" crosses module edge '" +
                        f.module + " -> " + to + "', which " + table_path +
                        " does not allow"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression audit: every allow(...) directive must still cover at least
// one raw (pre-suppression) finding of that rule, so stale suppressions
// cannot linger and silently swallow future findings.
// ---------------------------------------------------------------------------

void CheckSuppressionAudit(const std::vector<ProjectFile>& files,
                           const std::vector<Finding>& raw,
                           std::vector<Finding>* out) {
  std::map<std::string, const ProjectFile*> by_path;
  for (const ProjectFile& f : files) by_path[f.path] = &f;

  std::set<std::tuple<std::string, size_t, std::string>> live;
  for (const Finding& fd : raw) {
    auto it = by_path.find(fd.file);
    if (it == by_path.end()) continue;
    size_t li = fd.line > 0 ? static_cast<size_t>(fd.line) - 1 : 0;
    if (li >= it->second->src.raw.size()) continue;
    for (size_t s : SuppressorLines(it->second->src, li)) {
      live.insert({fd.file, s, fd.rule});
    }
  }

  for (const ProjectFile& f : files) {
    for (size_t li = 0; li < f.src.comment.size(); ++li) {
      for (const std::string& rule : AllowedRulesOn(f.src.comment[li])) {
        // `allow(stale-suppression)` is the audit's own escape hatch and
        // `<rule>`-style placeholders are documentation, not directives.
        if (rule == "stale-suppression") continue;
        if (rule.find('<') != std::string::npos ||
            rule.find('>') != std::string::npos) {
          continue;
        }
        if (!IsKnownRule(rule) && rule != "io-error") {
          out->push_back(Finding{
              f.path, static_cast<int>(li) + 1, "stale-suppression",
              "suppression names unknown rule '" + rule +
                  "'; see ida_lint --list-rules for the registry"});
          continue;
        }
        if (live.count({f.path, li, rule}) == 0) {
          out->push_back(Finding{
              f.path, static_cast<int>(li) + 1, "stale-suppression",
              "'allow(" + rule + ")' no longer suppresses any finding of "
              "that rule on the lines it covers; remove the stale "
              "directive"});
        }
      }
    }
  }
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iter",
       "no iteration over std::unordered_{map,set}: order is unspecified "
       "and corrupts serialization / vote-tie determinism"},
      {"raw-random",
       "no rand()/srand()/random_device/raw mt19937: randomness flows "
       "through the seeded Rng in common/rng.h"},
      {"wall-clock",
       "no system_clock/time(nullptr)/gettimeofday in library code: wall "
       "time is non-reproducible (steady_clock durations are fine)"},
      {"float-eq",
       "no ==/!= on floating-point operands outside the sanctioned "
       "bitwise-equivalence comparisons"},
      {"include-guard", "headers open their code with #pragma once"},
      {"doc-comment",
       "headers open with a file-level comment and document every "
       "top-level class/struct"},
      {"sanitizer-hostile",
       "no setjmp/longjmp/vfork/alloca/thread-detach: they break "
       "-fsanitize instrumentation"},
      {"byte-cast",
       "no reinterpret_cast to pointer types outside the sanctioned "
       "byte-reading layer (common/binio.h, common/mapped_file.*, "
       "engine/artifact_v4.*)"},
      {"lock-discipline",
       "no access to an IDA_GUARDED_BY(mu) field outside a scope that "
       "acquires mu or a function marked IDA_REQUIRES(mu) "
       "(common/thread_annotations.h)"},
      {"layering",
       "no #include across a src/ module edge outside the declared DAG in "
       "tools/ida_lint/layering.txt (and the table itself must be an "
       "acyclic cover of the module set)"},
      {"stale-suppression",
       "no ida-lint: allow(...) comment that no longer suppresses a real "
       "finding of that rule (suppressions must not rot in place)"},
  };
  return kRules;
}

bool IsKnownRule(std::string_view id) {
  for (const RuleInfo& rule : Rules()) {
    if (id == rule.id) return true;
  }
  return false;
}

std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content) {
  Source src = BuildSource(content);
  std::string path_str(path);

  std::vector<Finding> findings;
  Reporter reporter(path_str, src, &findings);
  RunFileChecks(path_str, src, &reporter);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> LintFile(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {Finding{file.string(), 0, "io-error", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(file.generic_string(), buffer.str());
}

int LintTree(const std::filesystem::path& root,
             std::vector<Finding>* findings) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    std::vector<Finding> file_findings = LintFile(file);
    findings->insert(findings->end(), file_findings.begin(),
                     file_findings.end());
  }
  return static_cast<int>(files.size());
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

std::vector<Finding> LintProjectSources(const std::vector<SourceFile>& files,
                                        const ProjectOptions& options) {
  std::vector<ProjectFile> project;
  project.reserve(files.size());
  for (const SourceFile& sf : files) {
    project.push_back(BuildProjectFile(sf.path, sf.content, options.src_root));
  }

  // Every pass reports raw (unsuppressed) findings first: the suppression
  // audit needs to see what a directive *would* suppress before the final
  // filter takes the directives into account.
  std::vector<Finding> raw;
  for (const ProjectFile& f : project) {
    Reporter reporter(f.path, f.src, &raw, /*apply_suppression=*/false);
    RunFileChecks(f.path, f.src, &reporter);
  }

  std::vector<GuardedField> fields;
  RequiresTable requires_fns;
  for (const ProjectFile& f : project) {
    CollectGuardedFields(f, &fields);
    CollectRequires(f, &requires_fns);
  }
  for (const ProjectFile& f : project) {
    Reporter reporter(f.path, f.src, &raw, /*apply_suppression=*/false);
    CheckLockDiscipline(f, fields, requires_fns, &reporter);
  }

  CheckLayering(project, options, &raw);

  // Stale-suppression findings are raw findings too: an
  // `allow(stale-suppression)` directive can silence one, and is itself
  // exempt from the audit so the escape hatch cannot recurse.
  std::vector<Finding> stale;
  CheckSuppressionAudit(project, raw, &stale);
  raw.insert(raw.end(), stale.begin(), stale.end());

  std::map<std::string, const ProjectFile*> by_path;
  for (const ProjectFile& f : project) by_path[f.path] = &f;
  std::vector<Finding> findings;
  for (const Finding& fd : raw) {
    auto it = by_path.find(fd.file);
    if (it != by_path.end() && fd.line > 0) {
      size_t li = static_cast<size_t>(fd.line) - 1;
      if (li < it->second->src.raw.size() &&
          IsSuppressed(it->second->src, li, fd.rule)) {
        continue;
      }
    }
    findings.push_back(fd);
  }
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> LintProject(
    const std::vector<std::filesystem::path>& paths,
    const ProjectOptions& options, int* files_scanned) {
  std::vector<Finding> io_findings;
  ProjectOptions opt = options;
  if (!opt.layering_path.empty() && opt.layering_table.empty()) {
    std::ifstream in(opt.layering_path, std::ios::binary);
    if (!in) {
      io_findings.push_back(Finding{opt.layering_path, 0, "io-error",
                                    "cannot read layering table"});
    } else {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      opt.layering_table = buffer.str();
    }
  }

  std::vector<std::filesystem::path> expanded;
  for (const std::filesystem::path& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (std::filesystem::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
          expanded.push_back(it->path());
        }
      }
    } else {
      expanded.push_back(path);
    }
  }
  std::sort(expanded.begin(), expanded.end());
  expanded.erase(std::unique(expanded.begin(), expanded.end()),
                 expanded.end());

  std::vector<SourceFile> sources;
  sources.reserve(expanded.size());
  for (const std::filesystem::path& file : expanded) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      io_findings.push_back(
          Finding{file.string(), 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.push_back(SourceFile{file.generic_string(), buffer.str()});
  }
  if (files_scanned != nullptr) {
    *files_scanned = static_cast<int>(sources.size());
  }

  std::vector<Finding> findings = LintProjectSources(sources, opt);
  findings.insert(findings.end(), io_findings.begin(), io_findings.end());
  SortFindings(&findings);
  return findings;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindingsJson(const std::vector<Finding>& findings,
                               int files_scanned) {
  // Registered rules first (in registry order, zeros included, so counts
  // are diffable across runs), then any synthetic rule ids seen in the
  // findings (e.g. "io-error"), sorted.
  std::vector<std::pair<std::string, int>> counts;
  std::map<std::string, size_t> index;
  for (const RuleInfo& rule : Rules()) {
    index[rule.id] = counts.size();
    counts.emplace_back(rule.id, 0);
  }
  for (const Finding& f : findings) {
    auto it = index.find(f.rule);
    if (it == index.end()) {
      index[f.rule] = counts.size();
      counts.emplace_back(f.rule, 0);
      it = index.find(f.rule);
    }
    ++counts[it->second].second;
  }
  std::sort(counts.begin() + static_cast<long>(Rules().size()), counts.end());

  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << files_scanned << ",\n";
  os << "  \"rule_counts\": {";
  for (size_t i = 0; i < counts.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    \"" << JsonEscape(counts[i].first)
       << "\": " << counts[i].second;
  }
  os << "\n  },\n";
  os << "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << JsonEscape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \""
       << JsonEscape(f.rule) << "\", \"message\": \""
       << JsonEscape(f.message) << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace ida::lint
