// Implementation of the ida_lint lexical checker. The analysis is
// deliberately file-local and token-based: each rule is cheap, predictable,
// and pinned by fixtures in tests/lint_test.cpp, which is what makes the
// checker itself trustworthy enough to gate CI.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace ida::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

// A file split into physical lines, twice: the raw text (for suppression
// comments and the doc-comment rule, which inspect comments) and a code
// view with comments and string/character literals blanked out (so tokens
// inside them never trigger a rule).
struct Source {
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

// Blanks comments and string/char literal bodies, preserving line lengths
// so columns and line numbers stay aligned with the raw text.
std::vector<std::string> StripCode(const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of the line is a comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            code[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            code[i] = '\'';
            state = State::kChar;
          } else {
            code[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            code[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            code[i] = '\'';
            state = State::kCode;
          }
          break;
      }
    }
    // Unterminated string/char literals do not span lines in valid C++.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Suppressions: `ida-lint: allow(rule-a, rule-b)` on the finding's line or
// anywhere in the contiguous `//` comment block directly above it, so a
// multi-line justification can lead with the directive.
// ---------------------------------------------------------------------------

std::vector<std::string> AllowedRulesOn(const std::string& raw_line) {
  std::vector<std::string> rules;
  static const std::regex kAllow(R"(ida-lint:\s*allow\(([^)]*)\))");
  auto begin = std::sregex_iterator(raw_line.begin(), raw_line.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::stringstream list((*it)[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule = Trimmed(rule);
      if (!rule.empty()) rules.push_back(rule);
    }
  }
  return rules;
}

bool HasAllow(const std::string& raw_line, const std::string& rule) {
  for (const std::string& allowed : AllowedRulesOn(raw_line)) {
    if (allowed == rule) return true;
  }
  return false;
}

bool IsSuppressed(const Source& src, size_t line_index,
                  const std::string& rule) {
  if (HasAllow(src.raw[line_index], rule)) return true;
  // Walk upward through the comment block (if any) above the finding.
  for (size_t i = line_index; i > 0; --i) {
    const std::string trimmed = Trimmed(src.raw[i - 1]);
    if (trimmed.rfind("//", 0) != 0) break;
    if (HasAllow(src.raw[i - 1], rule)) return true;
  }
  return false;
}

// A small builder so every rule emits through one suppression-aware path.
class Reporter {
 public:
  Reporter(std::string path, const Source& src, std::vector<Finding>* out)
      : path_(std::move(path)), src_(src), out_(out) {}

  void Report(size_t line_index, const std::string& rule,
              const std::string& message) {
    if (IsSuppressed(src_, line_index, rule)) return;
    out_->push_back(Finding{path_, static_cast<int>(line_index) + 1, rule,
                            message});
  }

 private:
  std::string path_;
  const Source& src_;
  std::vector<Finding>* out_;
};

// ---------------------------------------------------------------------------
// Declaration tracking
// ---------------------------------------------------------------------------

// Reads the identifier starting at `pos` (after skipping whitespace,
// `*`/`&` and type qualifiers / multi-word type keywords), or returns ""
// when none starts there.
std::string ReadDeclaratorName(const std::string& line, size_t* pos) {
  static const std::set<std::string> kTypeWords = {
      "const", "unsigned", "signed", "long", "int", "short", "char", "auto"};
  size_t i = *pos;
  std::string name;
  while (i < line.size()) {
    char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '*' ||
        c == '&') {
      ++i;
      continue;
    }
    if (!IsIdentChar(c) ||
        std::isdigit(static_cast<unsigned char>(c)) != 0) {
      break;
    }
    size_t start = i;
    while (i < line.size() && IsIdentChar(line[i])) ++i;
    std::string word = line.substr(start, i - start);
    if (kTypeWords.count(word) > 0) continue;  // part of the type, not a name
    name = word;
    break;
  }
  *pos = i;
  return name;
}

// Collects names declared with a matching type on one code line: for
// `kFloatWord` that is `double x`, `float* f`, `double a = 0.0, b = 1.0`,
// `double arr[4]` and `double F(...)` (a call to F yields a double, so
// comparing its result with == is just as suspect). The same walker also
// collects integer-typed declarations so a name reused with both type
// families in one file (a common local like `m`) can be treated as
// ambiguous instead of flagged.
const std::regex& FloatWordRegex() {
  static const std::regex kFloatWord(R"((\bdouble\b|\bfloat\b))");
  return kFloatWord;
}

const std::regex& IntegerWordRegex() {
  static const std::regex kIntegerWord(
      R"(\b(int|long|short|unsigned|bool|char|size_t|ptrdiff_t|u?int(8|16|32|64)_t)\b)");
  return kIntegerWord;
}

void CollectTypedDecls(const std::string& line, const std::regex& type_word,
                       std::set<std::string>* out) {
  for (auto it = std::sregex_iterator(line.begin(), line.end(), type_word);
       it != std::sregex_iterator(); ++it) {
    size_t pos = static_cast<size_t>(it->position(0) + it->length(0));
    while (true) {
      std::string name = ReadDeclaratorName(line, &pos);
      if (name.empty()) break;
      out->insert(name);
      // Skip the initializer / parameter list up to a top-level comma
      // (next declarator) or the end of this declaration.
      int depth = 0;
      bool more = false;
      while (pos < line.size()) {
        char c = line[pos];
        if (c == '(' || c == '[' || c == '{') {
          ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
          if (depth == 0) break;  // closed the enclosing context
          --depth;
        } else if (depth == 0 && c == ',') {
          ++pos;
          more = true;
          break;
        } else if (depth == 0 && c == ';') {
          break;
        }
        ++pos;
      }
      if (!more) break;
    }
  }
}

void CollectFloatDecls(const std::string& line, std::set<std::string>* out) {
  static const std::regex kFloatVector(
      R"(vector\s*<\s*(?:double|float)\s*>\s*[*&]?\s*([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(line.begin(), line.end(), kFloatVector);
       it != std::sregex_iterator(); ++it) {
    out->insert((*it)[1].str());
  }
  CollectTypedDecls(line, FloatWordRegex(), out);
}

// Collects names declared as std::unordered_map / std::unordered_set.
// Declarations may wrap across lines inside the template argument list, so
// this walks the whole file; the reported declaration line is where the
// variable name lands.
struct UnorderedDecl {
  std::string name;
  size_t line_index;
};

std::vector<UnorderedDecl> CollectUnorderedDecls(const Source& src) {
  std::vector<UnorderedDecl> decls;
  static const std::regex kWord(R"(\bunordered_(?:map|set|multimap|multiset)\b)");
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kWord);
         it != std::sregex_iterator(); ++it) {
      size_t row = li;
      size_t pos = static_cast<size_t>(it->position(0) + it->length(0));
      // Walk the balanced template argument list, across lines if needed.
      int angle = 0;
      bool saw_args = false;
      while (row < src.code.size()) {
        const std::string& cur = src.code[row];
        for (; pos < cur.size(); ++pos) {
          char c = cur[pos];
          if (c == '<') {
            ++angle;
            saw_args = true;
          } else if (c == '>') {
            --angle;
          } else if (angle == 0 && saw_args &&
                     std::isspace(static_cast<unsigned char>(c)) == 0) {
            break;
          } else if (!saw_args &&
                     std::isspace(static_cast<unsigned char>(c)) == 0) {
            break;  // bare mention without template args — not a decl
          }
        }
        if (pos < cur.size() || !saw_args) break;
        ++row;
        pos = 0;
        if (row - li > 8) break;  // runaway; declarations are short
      }
      if (!saw_args || angle != 0 || row >= src.code.size()) continue;
      std::string name = ReadDeclaratorName(src.code[row], &pos);
      if (!name.empty()) decls.push_back(UnorderedDecl{name, row});
    }
  }
  return decls;
}

// ---------------------------------------------------------------------------
// Operand extraction for float-eq
// ---------------------------------------------------------------------------

// Walks left from `pos` (exclusive) over one postfix expression:
// identifier chains with ::/./-> and balanced ()/[] suffixes.
std::string LeftOperand(const std::string& line, size_t pos) {
  size_t end = pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(line[end - 1])) != 0) {
    --end;
  }
  size_t i = end;
  while (i > 0) {
    char c = line[i - 1];
    if (c == ')' || c == ']') {
      char open = c == ')' ? '(' : '[';
      int depth = 0;
      while (i > 0) {
        char b = line[i - 1];
        if (b == c) ++depth;
        if (b == open && --depth == 0) {
          --i;
          break;
        }
        --i;
      }
    } else if (IsIdentChar(c) || c == '.' ||
               (c == ':' && i > 1 && line[i - 2] == ':') ||
               (c == '>' && i > 1 && line[i - 2] == '-')) {
      i -= (c == '>' || (c == ':' && line[i - 2] == ':')) ? 2 : 1;
    } else {
      break;
    }
  }
  return line.substr(i, end - i);
}

// Walks right from `pos` over one postfix expression (mirror of the above,
// plus numeric literals like 1.5e-3).
std::string RightOperand(const std::string& line, size_t pos) {
  size_t i = pos;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
  }
  size_t start = i;
  if (i < line.size() && (line[i] == '-' || line[i] == '+')) ++i;
  while (i < line.size()) {
    char c = line[i];
    if (c == '(' || c == '[') {
      char close = c == '(' ? ')' : ']';
      int depth = 0;
      while (i < line.size()) {
        if (line[i] == c) ++depth;
        if (line[i] == close && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
    } else if (IsIdentChar(c) || c == '.') {
      ++i;
      // Exponent signs inside numeric literals: 1e-9, 2.5E+3.
      if ((c == 'e' || c == 'E') && i < line.size() &&
          (line[i] == '-' || line[i] == '+') && i >= 2 &&
          std::isdigit(static_cast<unsigned char>(line[i - 2])) != 0) {
        ++i;
      }
    } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
      i += 2;
    } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
      i += 2;
    } else {
      break;
    }
  }
  return line.substr(start, i - start);
}

bool IsFloatLiteral(const std::string& token) {
  static const std::regex kFloat(
      R"(^[+-]?(\d+\.\d*|\.\d+|\d+\.?\d*[eE][+-]?\d+)[fFlL]?$)");
  return std::regex_match(token, kFloat);
}

// Reduces an operand to the identifier that determines its type under the
// file-local heuristic: strips trailing (...) / [...] groups, then takes
// the last ::/./-> path component. `votes[label]` -> votes;
// `xs.size()` -> size; `Apply(x)` -> Apply.
std::string OperandBase(std::string token) {
  while (!token.empty() && (token.back() == ')' || token.back() == ']')) {
    char close = token.back();
    char open = close == ')' ? '(' : '[';
    int depth = 0;
    size_t i = token.size();
    while (i > 0) {
      char c = token[--i];
      if (c == close) ++depth;
      if (c == open && --depth == 0) break;
    }
    token.resize(i);
  }
  size_t cut = token.find_last_of(".>:");
  if (cut != std::string::npos) token = token.substr(cut + 1);
  return token;
}

// ---------------------------------------------------------------------------
// Per-rule messages
// ---------------------------------------------------------------------------

const char* kUnorderedIterMsg =
    "iteration over an unordered container: the order is unspecified, so "
    "feeding it into serialization, vote tallies, or any output breaks the "
    "artifact-checksum and tie-order guarantees; iterate a sorted copy or "
    "annotate an order-independent use with ida-lint: allow(unordered-iter)";
const char* kRawRandomMsg =
    "raw randomness source: all randomness must flow through the seeded "
    "ida::Rng in common/rng.h so runs are reproducible";
const char* kWallClockMsg =
    "wall-clock read: timestamps make core results non-reproducible; use "
    "std::chrono::steady_clock for durations and keep wall time out of "
    "library code";
const char* kFloatEqMsg =
    "floating-point ==/!= comparison: exact equality is only sanctioned in "
    "the bitwise-equivalence tests; use an epsilon, restructure, or "
    "annotate a deliberate exact comparison with ida-lint: allow(float-eq)";
const char* kIncludeGuardMsg =
    "header must open its code with #pragma once (a file-level comment may "
    "precede it)";
const char* kSanitizerHostileMsg =
    "construct breaks -fsanitize instrumentation (TSan/ASan cannot model "
    "it); join threads instead of detaching and avoid "
    "setjmp/longjmp/vfork/alloca";
const char* kByteCastMsg =
    "reinterpret_cast to a pointer type: re-typing raw bytes risks "
    "alignment and strict-aliasing UB on artifact buffers; read through "
    "binio::Reader or the sanctioned flat readers (common/binio.h, "
    "common/mapped_file.*, engine/artifact_v4.*), or annotate a vetted "
    "cast with ida-lint: allow(byte-cast)";

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void CheckUnorderedIter(const Source& src, Reporter* reporter) {
  std::set<std::string> names;
  for (const UnorderedDecl& d : CollectUnorderedDecls(src)) {
    names.insert(d.name);
  }
  if (names.empty()) return;
  static const std::regex kRangeFor(
      R"(for\s*\([^;()]*:\s*\*?&?([A-Za-z_]\w*)\s*\))");
  static const std::regex kIterLoop(R"(([A-Za-z_]\w*)\.c?begin\s*\(\s*\))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    std::smatch m;
    if (std::regex_search(line, m, kRangeFor) && names.count(m[1].str()) > 0) {
      reporter->Report(li, "unordered-iter", kUnorderedIterMsg);
      continue;
    }
    if (line.find("for") != std::string::npos &&
        std::regex_search(line, m, kIterLoop) &&
        names.count(m[1].str()) > 0) {
      reporter->Report(li, "unordered-iter", kUnorderedIterMsg);
    }
  }
}

void CheckRawRandom(const std::string& path, const Source& src,
                    Reporter* reporter) {
  // The Rng wrapper is the one sanctioned owner of a raw engine.
  if (path.find("common/rng.") != std::string::npos) return;
  static const std::regex kPatterns(
      R"(\brandom_device\b|(^|[^\w:])s?rand\s*\(|\b[dlm]rand48\b|\bmt19937(_64)?\b)");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (std::regex_search(src.code[li], kPatterns)) {
      reporter->Report(li, "raw-random", kRawRandomMsg);
    }
  }
}

void CheckWallClock(const Source& src, Reporter* reporter) {
  static const std::regex kPatterns(
      R"(\bsystem_clock\b|(^|[^\w])time\s*\(\s*(nullptr|NULL|0)\s*\)|\bgettimeofday\b|\blocaltime\b|\bgmtime(_r)?\b|\bctime\b|(^|[^\w])clock\s*\(\s*\))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (std::regex_search(src.code[li], kPatterns)) {
      reporter->Report(li, "wall-clock", kWallClockMsg);
    }
  }
}

void CheckFloatEq(const Source& src, Reporter* reporter) {
  std::set<std::string> floats;
  std::set<std::string> integers;
  for (const std::string& line : src.code) {
    CollectFloatDecls(line, &floats);
    CollectTypedDecls(line, IntegerWordRegex(), &integers);
  }
  // A name declared with both type families in the file (e.g. a local `m`
  // that is size_t in one function and double in another) is ambiguous
  // under the file-local heuristic; don't flag it.
  for (const std::string& name : integers) floats.erase(name);
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (size_t i = 0; i + 1 < line.size(); ++i) {
      bool is_eq = line[i] == '=' && line[i + 1] == '=';
      bool is_ne = line[i] == '!' && line[i + 1] == '=';
      if (!is_eq && !is_ne) continue;
      // Not part of <=, >=, ==, !=, += and friends on the left.
      if (i > 0 && (line[i - 1] == '=' || line[i - 1] == '<' ||
                    line[i - 1] == '>' || line[i - 1] == '!' ||
                    line[i - 1] == '+' || line[i - 1] == '-' ||
                    line[i - 1] == '*' || line[i - 1] == '/')) {
        continue;
      }
      if (i + 2 < line.size() && line[i + 2] == '=') continue;
      std::string lhs = LeftOperand(line, i);
      std::string rhs = RightOperand(line, i + 2);
      bool floaty = IsFloatLiteral(lhs) || IsFloatLiteral(rhs) ||
                    floats.count(OperandBase(lhs)) > 0 ||
                    floats.count(OperandBase(rhs)) > 0;
      if (floaty) {
        reporter->Report(li, "float-eq", kFloatEqMsg);
        break;  // one finding per line is enough
      }
      i += 1;
    }
  }
}

void CheckIncludeGuard(const Source& src, Reporter* reporter) {
  for (size_t li = 0; li < src.code.size(); ++li) {
    std::string code = Trimmed(src.code[li]);
    if (code.empty()) continue;
    if (code != "#pragma once") {
      reporter->Report(li, "include-guard", kIncludeGuardMsg);
    }
    return;
  }
  // A header with no code at all still lacks a guard.
  reporter->Report(0, "include-guard", kIncludeGuardMsg);
}

void CheckDocComment(const Source& src, Reporter* reporter) {
  if (src.raw.empty() || src.raw[0].rfind("//", 0) != 0) {
    reporter->Report(0, "doc-comment",
                     "header must open with a file-level // comment "
                     "describing what the file provides");
  }
  static const std::regex kTypeDecl(
      R"(^(class|struct)\s+[A-Za-z_]\w*( final)?\s*($|:[^:]|\{))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (!std::regex_search(src.code[li], kTypeDecl)) continue;
    // Walk up over template introducers and attributes to the doc line.
    size_t above = li;
    while (above > 0) {
      std::string prev = Trimmed(src.raw[above - 1]);
      if (prev.rfind("template", 0) == 0 || prev.rfind("[[", 0) == 0 ||
          prev.rfind(">", 0) == 0) {
        --above;
      } else {
        break;
      }
    }
    bool documented =
        above > 0 && Trimmed(src.raw[above - 1]).rfind("//", 0) == 0;
    if (!documented) {
      reporter->Report(li, "doc-comment",
                       "top-level type declaration without a preceding "
                       "/// doc comment");
    }
  }
}

void CheckSanitizerHostile(const Source& src, Reporter* reporter) {
  static const std::regex kPatterns(
      R"(\bsetjmp\b|\blongjmp\b|\bvfork\b|\balloca\s*\(|\.detach\s*\(\s*\))");
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (std::regex_search(src.code[li], kPatterns)) {
      reporter->Report(li, "sanitizer-hostile", kSanitizerHostileMsg);
    }
  }
}

void CheckByteCast(const std::string& path, const Source& src,
                   Reporter* reporter) {
  // The sanctioned byte-reading layer: the binio codec, the mmap wrapper,
  // and the v4 flat-artifact reader, where every cast sits behind the
  // bounds/alignment checks of the section directory.
  if (path.find("common/binio.h") != std::string::npos ||
      path.find("common/mapped_file.") != std::string::npos ||
      path.find("engine/artifact_v4.") != std::string::npos) {
    return;
  }
  static const std::regex kCastOpen(R"(\breinterpret_cast\s*<)");
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kCastOpen);
         it != std::sregex_iterator(); ++it) {
      // Collect the target type up to the matching '>', across a few
      // lines if the cast wraps.
      std::string target;
      size_t row = li;
      size_t pos = static_cast<size_t>(it->position(0) + it->length(0));
      int angle = 1;
      while (row < src.code.size() && angle > 0 && row - li <= 3) {
        const std::string& cur = src.code[row];
        for (; pos < cur.size() && angle > 0; ++pos) {
          if (cur[pos] == '<') ++angle;
          if (cur[pos] == '>' && --angle == 0) break;
          target.push_back(cur[pos]);
        }
        if (angle > 0) {
          ++row;
          pos = 0;
        }
      }
      // Only pointer targets re-type memory; integral targets such as
      // reinterpret_cast<uintptr_t> (pointer hashing) are harmless.
      if (target.find('*') != std::string::npos) {
        reporter->Report(li, "byte-cast", kByteCastMsg);
        break;  // one finding per line is enough
      }
    }
  }
}

bool IsHeaderPath(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iter",
       "no iteration over std::unordered_{map,set}: order is unspecified "
       "and corrupts serialization / vote-tie determinism"},
      {"raw-random",
       "no rand()/srand()/random_device/raw mt19937: randomness flows "
       "through the seeded Rng in common/rng.h"},
      {"wall-clock",
       "no system_clock/time(nullptr)/gettimeofday in library code: wall "
       "time is non-reproducible (steady_clock durations are fine)"},
      {"float-eq",
       "no ==/!= on floating-point operands outside the sanctioned "
       "bitwise-equivalence comparisons"},
      {"include-guard", "headers open their code with #pragma once"},
      {"doc-comment",
       "headers open with a file-level comment and document every "
       "top-level class/struct"},
      {"sanitizer-hostile",
       "no setjmp/longjmp/vfork/alloca/thread-detach: they break "
       "-fsanitize instrumentation"},
      {"byte-cast",
       "no reinterpret_cast to pointer types outside the sanctioned "
       "byte-reading layer (common/binio.h, common/mapped_file.*, "
       "engine/artifact_v4.*)"},
  };
  return kRules;
}

bool IsKnownRule(std::string_view id) {
  for (const RuleInfo& rule : Rules()) {
    if (id == rule.id) return true;
  }
  return false;
}

std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content) {
  Source src;
  src.raw = SplitLines(content);
  src.code = StripCode(src.raw);
  std::string path_str(path);

  std::vector<Finding> findings;
  Reporter reporter(path_str, src, &findings);
  CheckUnorderedIter(src, &reporter);
  CheckRawRandom(path_str, src, &reporter);
  CheckWallClock(src, &reporter);
  CheckFloatEq(src, &reporter);
  CheckSanitizerHostile(src, &reporter);
  CheckByteCast(path_str, src, &reporter);
  if (IsHeaderPath(path_str)) {
    CheckIncludeGuard(src, &reporter);
    CheckDocComment(src, &reporter);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> LintFile(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {Finding{file.string(), 0, "io-error", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(file.generic_string(), buffer.str());
}

int LintTree(const std::filesystem::path& root,
             std::vector<Finding>* findings) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    std::vector<Finding> file_findings = LintFile(file);
    findings->insert(findings->end(), file_findings.begin(),
                     file_findings.end());
  }
  return static_cast<int>(files.size());
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

}  // namespace ida::lint
