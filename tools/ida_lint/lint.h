// ida_lint — project-invariant static checker for the IDA-Interest tree.
//
// The engine's guarantees (bitwise-identical predictions across thread
// counts, index-vs-brute equivalence, checksum-stable model artifacts) are
// enforced at runtime by tests; this checker enforces the *coding rules*
// that make those guarantees hold, at lint time, before a violation can
// ship. It is a lexical analyzer, not a compiler plugin: comments and
// string literals are stripped, declarations are tracked per file with
// token-level heuristics, and every rule is pinned down by fixture tests
// in tests/lint_test.cpp.
//
// Rules (see Rules() for the authoritative list):
//   unordered-iter     iteration over std::unordered_{map,set} — order is
//                      unspecified and breaks artifact checksums / vote tie
//                      order when it feeds serialization or output
//   raw-random         rand()/srand()/std::random_device/raw mt19937 —
//                      all randomness must flow through common/rng.h
//   wall-clock         system_clock / time(nullptr) / gettimeofday — wall
//                      clock reads make runs non-reproducible
//                      (steady_clock durations are allowed)
//   float-eq           ==/!= where an operand is a floating literal or a
//                      variable declared double/float in the same file
//   include-guard      headers must open their code with #pragma once
//   doc-comment        headers must start with a file-level comment and
//                      document every top-level class/struct
//   sanitizer-hostile  setjmp/longjmp/vfork/alloca/thread detach — these
//                      break -fsanitize instrumentation
//   byte-cast          reinterpret_cast to a pointer type outside the
//                      sanctioned byte-reading layer (common/binio.h,
//                      common/mapped_file.*, engine/artifact_v4.*) —
//                      alignment / strict-aliasing UB trap on artifact
//                      buffers (integral targets like uintptr_t are fine)
//
// Suppression: a finding on line N is suppressed when line N or line N-1
// contains `ida-lint: allow(<rule>)`, optionally with a justification
// after a colon, e.g.
//   // ida-lint: allow(float-eq): exact tie rule, max is copied bitwise
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace ida::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;     ///< path as given to the linter
  int line = 0;         ///< 1-based line number
  std::string rule;     ///< rule id, e.g. "unordered-iter"
  std::string message;  ///< human-readable explanation
};

/// Static description of one lint rule.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The authoritative rule registry, in report order.
const std::vector<RuleInfo>& Rules();

/// True when `id` names a registered rule.
bool IsKnownRule(std::string_view id);

/// Lints one translation unit given as an in-memory string. `path` is used
/// for reporting, for header-only rules (files ending in .h) and for the
/// built-in exemptions (e.g. common/rng.h may reference raw generators).
std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content);

/// Lints one file on disk; returns findings (empty on a clean file).
/// I/O errors are reported as a synthetic finding with rule "io-error".
std::vector<Finding> LintFile(const std::filesystem::path& file);

/// Recursively lints every *.h / *.cc / *.cpp under `root`, appending to
/// `findings`. Returns the number of files scanned.
int LintTree(const std::filesystem::path& root,
             std::vector<Finding>* findings);

/// "file:line: [rule] message" — the single-line report format.
std::string FormatFinding(const Finding& f);

}  // namespace ida::lint
