// ida_lint — project-invariant static checker for the IDA-Interest tree.
//
// The engine's guarantees (bitwise-identical predictions across thread
// counts, index-vs-brute equivalence, checksum-stable model artifacts) are
// enforced at runtime by tests; this checker enforces the *coding rules*
// that make those guarantees hold, at lint time, before a violation can
// ship. It is a lexical analyzer, not a compiler plugin: comments and
// string literals are stripped, declarations are tracked per file with
// token-level heuristics, and every rule is pinned down by fixture tests
// in tests/lint_test.cpp.
//
// The checker runs in two stages. Stage one is file-local (LintSource):
//   unordered-iter     iteration over std::unordered_{map,set} — order is
//                      unspecified and breaks artifact checksums / vote tie
//                      order when it feeds serialization or output
//   raw-random         rand()/srand()/std::random_device/raw mt19937 —
//                      all randomness must flow through common/rng.h
//   wall-clock         system_clock / time(nullptr) / gettimeofday — wall
//                      clock reads make runs non-reproducible
//                      (steady_clock durations are allowed)
//   float-eq           ==/!= where an operand is a floating literal or a
//                      variable declared double/float in the same file
//   include-guard      headers must open their code with #pragma once
//   doc-comment        headers must start with a file-level comment and
//                      document every top-level class/struct
//   sanitizer-hostile  setjmp/longjmp/vfork/alloca/thread detach — these
//                      break -fsanitize instrumentation
//   byte-cast          reinterpret_cast to a pointer type outside the
//                      sanctioned byte-reading layer (common/binio.h,
//                      common/mapped_file.*, engine/artifact_v4.*) —
//                      alignment / strict-aliasing UB trap on artifact
//                      buffers (integral targets like uintptr_t are fine)
//
// Stage two is cross-file (LintProject), over every file at once:
//   lock-discipline    a field annotated IDA_GUARDED_BY(mu) in
//                      common/thread_annotations.h vocabulary is accessed
//                      in a scope that neither acquires `mu` (MutexLock,
//                      std::lock_guard/unique_lock/scoped_lock, .lock())
//                      nor belongs to a function marked IDA_REQUIRES(mu)
//   layering           an #include crosses a src/ module edge that the
//                      declared DAG in tools/ida_lint/layering.txt does
//                      not allow (or the table itself has a cycle /
//                      unknown module)
//   stale-suppression  an `ida-lint: allow(<rule>)` comment that no longer
//                      suppresses any finding of that rule (or names an
//                      unknown rule), so suppressions cannot rot in place
//
// Suppression: a finding on line N is suppressed when line N or the
// contiguous `//` comment block directly above it contains
// `ida-lint: allow(<rule>)` in comment text, optionally with a
// justification after a colon:  ida-lint: allow(<rule>): <why>
// (Directives inside string literals are ignored; `<rule>` placeholders in
// prose like the line above are exempt from the stale-suppression audit.)
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace ida::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;     ///< path as given to the linter
  int line = 0;         ///< 1-based line number
  std::string rule;     ///< rule id, e.g. "unordered-iter"
  std::string message;  ///< human-readable explanation
};

/// Static description of one lint rule.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The authoritative rule registry, in report order.
const std::vector<RuleInfo>& Rules();

/// True when `id` names a registered rule.
bool IsKnownRule(std::string_view id);

/// Lints one translation unit given as an in-memory string. `path` is used
/// for reporting, for header-only rules (files ending in .h) and for the
/// built-in exemptions (e.g. common/rng.h may reference raw generators).
/// Runs the file-local stage only; cross-file passes need LintProject.
std::vector<Finding> LintSource(std::string_view path,
                                std::string_view content);

/// Lints one file on disk; returns findings (empty on a clean file).
/// I/O errors are reported as a synthetic finding with rule "io-error".
std::vector<Finding> LintFile(const std::filesystem::path& file);

/// Recursively lints every *.h / *.cc / *.cpp under `root`, appending to
/// `findings`. Returns the number of files scanned. File-local stage only.
int LintTree(const std::filesystem::path& root,
             std::vector<Finding>* findings);

/// One in-memory source file for project-level linting (tests, self-test).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Configuration of the cross-file stage.
struct ProjectOptions {
  /// Directory prefix whose first-level subdirectories are the layering
  /// modules (normally the repo's `src`). Empty disables the layering
  /// pass; the lock-discipline and suppression-audit passes always run.
  std::string src_root;
  /// Path of the layering table, for reporting and (in LintProject, when
  /// `layering_table` is empty) for reading the table from disk.
  std::string layering_path;
  /// Contents of the layering table. Each non-comment line declares one
  /// module and the modules it may #include: `serve: common session ...`
  /// (a module may always include itself; `#` starts a comment).
  std::string layering_table;
};

/// Cross-file lint over an in-memory file set: runs the file-local stage
/// on every file plus the lock-discipline, layering and
/// suppression-audit passes. Findings are sorted by (file, line, rule).
std::vector<Finding> LintProjectSources(const std::vector<SourceFile>& files,
                                        const ProjectOptions& options);

/// Cross-file lint over files and/or directories on disk (directories are
/// scanned recursively for *.h / *.cc / *.cpp). Reads the layering table
/// from options.layering_path when options.layering_table is empty.
/// `files_scanned` (optional) receives the number of files read.
std::vector<Finding> LintProject(
    const std::vector<std::filesystem::path>& paths,
    const ProjectOptions& options, int* files_scanned);

/// "file:line: [rule] message" — the single-line report format.
std::string FormatFinding(const Finding& f);

/// Renders findings as one JSON object: {"files_scanned": N,
/// "rule_counts": {rule: count for every registered rule}, "findings":
/// [{"file","line","rule","message"}...]} — the `--json` CLI output, and
/// the artifact CI uploads so per-rule counts are diffable across PRs.
std::string FormatFindingsJson(const std::vector<Finding>& findings,
                               int files_scanned);

}  // namespace ida::lint
