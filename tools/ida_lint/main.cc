// CLI for the ida_lint invariant checker.
//
//   ida_lint [--list-rules] [path ...]
//
// Paths may be files or directories (directories are scanned recursively
// for *.h / *.cc / *.cpp); with no path the tool lints ./src. Exits 0 when
// clean, 1 when findings were reported, 2 on usage or I/O errors.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const ida::lint::RuleInfo& rule : ida::lint::Rules()) {
        std::printf("%-18s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: ida_lint [--list-rules] [path ...]\n");
      return 0;
    }
    if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "ida_lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.push_back("src");

  std::vector<ida::lint::Finding> findings;
  int files_scanned = 0;
  for (const std::string& path : paths) {
    std::filesystem::path p(path);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      files_scanned += ida::lint::LintTree(p, &findings);
    } else if (std::filesystem::is_regular_file(p, ec)) {
      std::vector<ida::lint::Finding> file_findings =
          ida::lint::LintFile(p);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      ++files_scanned;
    } else {
      std::fprintf(stderr, "ida_lint: no such file or directory: %s\n",
                   path.c_str());
      return 2;
    }
  }

  for (const ida::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", ida::lint::FormatFinding(f).c_str());
  }
  std::fprintf(stderr, "ida_lint: %zu finding(s) in %d file(s) scanned\n",
               findings.size(), files_scanned);
  return findings.empty() ? 0 : 1;
}
