// CLI for the ida_lint invariant checker.
//
//   ida_lint [--list-rules] [--json] [--self-test]
//            [--layering FILE] [--src-root DIR] [path ...]
//
// Paths may be files or directories (directories are scanned recursively
// for *.h / *.cc / *.cpp); with no path the tool lints ./src. Findings and
// per-rule counts go to stderr; --json additionally prints a machine-
// readable report on stdout (the artifact CI uploads). --layering enables
// the module-layering pass against the declared DAG, with --src-root
// naming the directory whose first-level subdirectories are the modules.
// --self-test lints a built-in synthetic mini-tree with seeded violations
// (a forbidden cross-module include, an unlocked guarded-field access, a
// stale suppression, a raw-string decoy) and fails unless exactly those
// are caught. Exits 0 when clean, 1 when findings were reported, 2 on
// usage or I/O errors.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint.h"

namespace {

// Lints an in-memory mini-project with one seeded violation per semantic
// pass plus decoys that must stay clean; returns 0 only when the findings
// are exactly the seeded ones.
int SelfTest() {
  using ida::lint::Finding;
  using ida::lint::SourceFile;

  std::vector<SourceFile> files;
  files.push_back(SourceFile{
      "src/common/util.h",
      "// common/util.h — self-test fixture.\n"
      "#pragma once\n"
      "inline int Util() { return 1; }\n"});
  files.push_back(SourceFile{
      "src/serve/api.h",
      "// serve/api.h — self-test fixture.\n"
      "#pragma once\n"
      "#include \"common/util.h\"\n"
      "inline int Api() { return Util(); }\n"});
  // Seeded layering violation: distance may not include serve.
  files.push_back(SourceFile{
      "src/distance/bad.h",
      "// distance/bad.h — seeded forbidden cross-module include.\n"
      "#pragma once\n"
      "#include \"serve/api.h\"\n"});
  // Seeded lock-discipline violation: Bump touches v_ without mu_.
  files.push_back(SourceFile{
      "src/common/box.h",
      "// common/box.h — seeded guarded-field access without the lock.\n"
      "#pragma once\n"
      "#include \"common/mutex.h\"\n"
      "/// A counter guarded by a mutex.\n"
      "class Box {\n"
      " public:\n"
      "  int Get() {\n"
      "    MutexLock lock(&mu_);\n"
      "    return v_;\n"
      "  }\n"
      "  void Bump() { v_ += 1; }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int v_ IDA_GUARDED_BY(mu_) = 0;\n"
      "};\n"});
  // Seeded stale suppression: nothing here triggers raw-random any more.
  files.push_back(SourceFile{
      "src/common/stale.h",
      "// common/stale.h — seeded stale suppression.\n"
      "#pragma once\n"
      "// ida-lint: allow(raw-random): nothing here uses it any more\n"
      "inline int Zero() { return 0; }\n"});
  // Decoy: a live suppression that must not be reported as stale.
  files.push_back(SourceFile{
      "src/common/rand.cc",
      "// common/rand.cc — live suppression decoy.\n"
      "// ida-lint: allow(raw-random): fixture exercises a live directive\n"
      "int seed = rand();\n"});
  // Decoy: rule tokens inside a raw string literal must stay invisible.
  files.push_back(SourceFile{
      "src/common/raw.cc",
      "// common/raw.cc — raw-string decoy.\n"
      "const char* kDoc = R\"(std::system_clock::now() and rand())\";\n"});

  ida::lint::ProjectOptions options;
  options.src_root = "src";
  options.layering_path = "layering.txt";
  options.layering_table =
      "common:\n"
      "serve: common\n"
      "distance: common\n";

  std::vector<Finding> findings =
      ida::lint::LintProjectSources(files, options);

  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "ida_lint self-test FAILED: %s\n", what);
      ++failures;
    }
  };
  auto count = [&](const std::string& file, const std::string& rule) {
    int n = 0;
    for (const Finding& f : findings) {
      if (f.file == file && f.rule == rule) ++n;
    }
    return n;
  };

  expect(count("src/distance/bad.h", "layering") == 1,
         "seeded forbidden include distance -> serve was not caught");
  expect(count("src/common/box.h", "lock-discipline") == 1,
         "seeded unlocked guarded-field access was not caught");
  expect(count("src/common/stale.h", "stale-suppression") == 1,
         "seeded stale suppression was not caught");
  expect(count("src/common/rand.cc", "raw-random") == 0,
         "live suppression in rand.cc was not honored");
  expect(count("src/common/rand.cc", "stale-suppression") == 0,
         "live suppression in rand.cc was misreported as stale");
  expect(count("src/common/raw.cc", "wall-clock") == 0 &&
             count("src/common/raw.cc", "raw-random") == 0,
         "tokens inside a raw string literal were not stripped");
  expect(findings.size() == 3, "unexpected extra findings");

  if (failures > 0) {
    for (const Finding& f : findings) {
      std::fprintf(stderr, "  %s\n", ida::lint::FormatFinding(f).c_str());
    }
    return 1;
  }
  std::fprintf(stderr, "ida_lint self-test passed (%zu seeded findings)\n",
               findings.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool json = false;
  std::string layering_path;
  std::string src_root;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const ida::lint::RuleInfo& rule : ida::lint::Rules()) {
        std::printf("%-18s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ida_lint [--list-rules] [--json] [--self-test]\n"
          "                [--layering FILE] [--src-root DIR] [path ...]\n");
      return 0;
    }
    if (arg == "--self-test") return SelfTest();
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--layering" || arg == "--src-root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ida_lint: %s needs an argument\n", arg.c_str());
        return 2;
      }
      (arg == "--layering" ? layering_path : src_root) = argv[++i];
      continue;
    }
    if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "ida_lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.push_back("src");
  if (src_root.empty()) src_root = "src";

  std::vector<std::filesystem::path> roots;
  for (const std::string& path : paths) {
    std::filesystem::path p(path);
    std::error_code ec;
    if (!std::filesystem::exists(p, ec)) {
      std::fprintf(stderr, "ida_lint: no such file or directory: %s\n",
                   path.c_str());
      return 2;
    }
    roots.push_back(p);
  }

  ida::lint::ProjectOptions options;
  options.layering_path = layering_path;
  if (!layering_path.empty()) options.src_root = src_root;

  int files_scanned = 0;
  std::vector<ida::lint::Finding> findings =
      ida::lint::LintProject(roots, options, &files_scanned);

  for (const ida::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", ida::lint::FormatFinding(f).c_str());
  }
  if (!findings.empty()) {
    std::map<std::string, int> counts;
    for (const ida::lint::Finding& f : findings) ++counts[f.rule];
    for (const auto& [rule, n] : counts) {
      std::fprintf(stderr, "ida_lint:   %-18s %d\n", rule.c_str(), n);
    }
  }
  std::fprintf(stderr, "ida_lint: %zu finding(s) in %d file(s) scanned\n",
               findings.size(), files_scanned);
  if (json) {
    std::fputs(ida::lint::FormatFindingsJson(findings, files_scanned).c_str(),
               stdout);
  }
  return findings.empty() ? 0 : 1;
}
