// loadgen — the trace-driven load harness CLI (DESIGN.md §15, README
// "Load testing & SLOs").
//
// Two modes:
//
//   loadgen --make-trace serve.trace [--sessions N] [--max-steps N]
//           [--session-rate R] [--step-rate R] [--trace-seed S]
//           [--world-users N] [--world-sessions N] [--world-rows N]
//           [--world-seed S]
//     Generates a deterministic open-loop workload trace from a synthetic
//     world (replay/replay.h SynthesizeTrace). The world's generator
//     options are embedded in the trace, so a replayer needs nothing but
//     the file.
//
//   loadgen --trace serve.trace [--workers N] [--speed X] [--poisson R]
//           [--seed S] [--model artifact] [--save-model artifact]
//           [--reload artifact] [--check-determinism] [--no-index]
//           [--metrics-json path] [--slo-p99-us N]
//     Replays the trace against a fresh SessionManager (training a model
//     from the trace's embedded world unless --model is given) and prints
//     the repo's JSON bench lines: provenance, one replay line with
//     p50/p95/p99 latency + throughput, an optional determinism line, and
//     a verdict line. Exit status is nonzero on replay errors, a failed
//     determinism check, or a busted absolute SLO (--slo-p99-us 0
//     disables the absolute gate; CI's regression gate is relative, see
//     tools/check_bench.py).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "obs/capture.h"
#include "obs/obs.h"
#include "replay/replay.h"
#include "serve/session_manager.h"
#include "synth/generator.h"

namespace ida {
namespace {

struct Flags {
  std::string make_trace;
  std::string trace;
  size_t sessions = 64;
  size_t max_steps = 12;
  double session_rate = 4.0;
  double step_rate = 2.0;
  uint64_t trace_seed = 20190326;
  size_t world_users = 16;
  size_t world_sessions = 150;
  size_t world_rows = 800;
  uint64_t world_seed = 424242;
  int workers = 4;
  double speed = 1.0;
  double poisson = 0.0;  // > 0 selects Poisson arrivals at this rate
  uint64_t seed = 1;
  std::string model;
  std::string save_model;
  std::string reload;
  bool check_determinism = false;
  bool no_index = false;
  std::string metrics_json;
  uint64_t slo_p99_us = 0;  // 0 = no absolute gate (relative gate is CI's)
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --make-trace PATH [workload flags]\n"
      "       %s --trace PATH [replay flags]\n"
      "see tools/loadgen/main.cc and README 'Load testing & SLOs'\n",
      argv0, argv0);
  std::exit(2);
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--make-trace") == 0) {
      f.make_trace = value(i);
    } else if (std::strcmp(a, "--trace") == 0) {
      f.trace = value(i);
    } else if (std::strcmp(a, "--sessions") == 0) {
      f.sessions = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--max-steps") == 0) {
      f.max_steps = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--session-rate") == 0) {
      f.session_rate = std::strtod(value(i), nullptr);
    } else if (std::strcmp(a, "--step-rate") == 0) {
      f.step_rate = std::strtod(value(i), nullptr);
    } else if (std::strcmp(a, "--trace-seed") == 0) {
      f.trace_seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--world-users") == 0) {
      f.world_users = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--world-sessions") == 0) {
      f.world_sessions = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--world-rows") == 0) {
      f.world_rows = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--world-seed") == 0) {
      f.world_seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--workers") == 0) {
      f.workers = static_cast<int>(std::strtol(value(i), nullptr, 10));
    } else if (std::strcmp(a, "--speed") == 0) {
      f.speed = std::strtod(value(i), nullptr);
    } else if (std::strcmp(a, "--poisson") == 0) {
      f.poisson = std::strtod(value(i), nullptr);
    } else if (std::strcmp(a, "--seed") == 0) {
      f.seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(a, "--model") == 0) {
      f.model = value(i);
    } else if (std::strcmp(a, "--save-model") == 0) {
      f.save_model = value(i);
    } else if (std::strcmp(a, "--reload") == 0) {
      f.reload = value(i);
    } else if (std::strcmp(a, "--check-determinism") == 0) {
      f.check_determinism = true;
    } else if (std::strcmp(a, "--no-index") == 0) {
      f.no_index = true;
    } else if (std::strcmp(a, "--metrics-json") == 0) {
      f.metrics_json = value(i);
    } else if (std::strcmp(a, "--slo-p99-us") == 0) {
      f.slo_p99_us = std::strtoull(value(i), nullptr, 10);
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", a);
      Usage(argv[0]);
    }
  }
  if (f.make_trace.empty() == f.trace.empty()) Usage(argv[0]);
  return f;
}

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::printf("{\"bench\":\"serve_slo\",\"error\":\"%s: %s\"}\n",
              what.c_str(), status.ToString().c_str());
  std::exit(1);
}

/// The serving-scale model configuration (mirrors bench_serve_session):
/// keep every state so the training set is dense enough to serve against.
ModelConfig ServeConfig(bool no_index) {
  ModelConfig config = DefaultNormalizedConfig();
  config.theta_interest = -1e300;
  config.knn.distance_threshold = 0.25;
  config.use_index = !no_index;
  return config;
}

std::string SummaryJsonMicros(const replay::LatencySummary& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%zu,\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,"
                "\"p99\":%.1f,\"max\":%.1f}",
                s.count, s.mean * 1e6, s.p50 * 1e6, s.p95 * 1e6, s.p99 * 1e6,
                s.max * 1e6);
  return buf;
}

bool BitEqual(double a, double b) {
  uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

int MakeTrace(const Flags& f) {
  GeneratorOptions world;
  world.num_users = f.world_users;
  world.num_sessions = f.world_sessions;
  world.rows_per_dataset = f.world_rows;
  world.seed = f.world_seed;
  Result<SynthBenchmark> bench = GenerateBenchmark(world);
  if (!bench.ok()) Die("world generation failed", bench.status());

  replay::SyntheticTraceOptions opt;
  opt.num_sessions = f.sessions;
  opt.max_steps = f.max_steps;
  opt.session_rate = f.session_rate;
  opt.step_rate = f.step_rate;
  opt.seed = f.trace_seed;
  Result<obs::Trace> trace =
      replay::SynthesizeTrace(bench.value(), world, opt);
  if (!trace.ok()) Die("trace synthesis failed", trace.status());
  Status st = obs::WriteTraceFile(trace.value(), f.make_trace);
  if (!st.ok()) Die("trace write failed", st);

  size_t advises = 0;
  for (const obs::CaptureRecord& r : trace.value().records) {
    if (r.kind == obs::CaptureKind::kAdvise) ++advises;
  }
  const uint64_t span_us = trace.value().records.empty()
                               ? 0
                               : trace.value().records.back().arrival_us;
  std::printf(
      "{\"bench\":\"serve_slo\",\"config\":\"make_trace\",\"path\":\"%s\","
      "\"sessions\":%zu,\"events\":%zu,\"advises\":%zu,"
      "\"virtual_seconds\":%.2f,\"world_users\":%zu,\"world_sessions\":%zu,"
      "\"world_rows\":%zu,\"world_seed\":%llu,\"trace_seed\":%llu}\n",
      f.make_trace.c_str(), f.sessions, trace.value().records.size(),
      advises, static_cast<double>(span_us) / 1e6, f.world_users,
      f.world_sessions, f.world_rows,
      static_cast<unsigned long long>(f.world_seed),
      static_cast<unsigned long long>(f.trace_seed));
  return 0;
}

replay::ReplayOptions ReplayOptionsFor(const Flags& f) {
  replay::ReplayOptions opt;
  opt.workers = f.workers;
  opt.speed = f.speed;
  if (f.poisson > 0.0) {
    opt.arrivals = replay::ArrivalMode::kPoisson;
    opt.poisson_rate = f.poisson;
  }
  opt.seed = f.seed;
  opt.reload_path = f.reload;
  return opt;
}

void PrintReplayLine(const Flags& f, const replay::ReplayReport& r,
                     const char* run) {
  std::printf(
      "{\"bench\":\"serve_slo\",\"mode\":\"replay\",\"run\":\"%s\","
      "\"workers\":%d,\"speed\":%.2f,\"arrivals\":\"%s\","
      "\"events\":%zu,\"executed\":%zu,\"skipped\":%zu,\"errors\":%zu,"
      "\"opens\":%zu,\"appends\":%zu,\"advises\":%zu,\"closes\":%zu,"
      "\"wall_seconds\":%.3f,\"virtual_seconds\":%.3f,"
      "\"throughput_events_per_sec\":%.1f,\"advise_qps\":%.1f,"
      "\"max_lag_us\":%.1f,"
      "\"advise_service_us\":%s,\"advise_total_us\":%s,"
      "\"append_service_us\":%s}\n",
      run, f.workers, f.speed, f.poisson > 0.0 ? "poisson" : "recorded",
      r.events, r.executed, r.skipped, r.errors, r.opens, r.appends,
      r.advises, r.closes, r.wall_seconds, r.virtual_seconds,
      r.throughput_events_per_sec, r.advise_qps, r.max_lag_seconds * 1e6,
      SummaryJsonMicros(r.advise_service).c_str(),
      SummaryJsonMicros(r.advise_total).c_str(),
      SummaryJsonMicros(r.append_service).c_str());
}

int Replay(const Flags& f) {
  Result<obs::Trace> trace_in = obs::ReadTraceFile(f.trace);
  if (!trace_in.ok()) Die("trace read failed", trace_in.status());
  const obs::Trace& trace = trace_in.value();
  if (!trace.world.has_value()) {
    Die("trace carries no world provenance",
        Status::FailedPrecondition(
            "replay needs the embedded generator options to rebuild the "
            "datasets (re-capture with SetWorld, or regenerate with "
            "--make-trace)"));
  }

  GeneratorOptions world;
  world.num_users = trace.world->num_users;
  world.num_sessions = trace.world->num_sessions;
  world.rows_per_dataset = trace.world->rows_per_dataset;
  world.seed = trace.world->seed;
  Result<SynthBenchmark> bench = GenerateBenchmark(world);
  if (!bench.ok()) Die("world regeneration failed", bench.status());

  // The served model: loaded from an artifact, or trained from the
  // trace's own world (deterministic — same trace, same model).
  std::shared_ptr<const engine::Predictor> predictor;
  const char* model_source = "trained";
  if (!f.model.empty()) {
    model_source = "loaded";
    Result<engine::Predictor> loaded =
        engine::Predictor::LoadFromFile(f.model);
    if (!loaded.ok()) Die("model load failed", loaded.status());
    predictor = std::make_shared<const engine::Predictor>(
        std::move(loaded.value()));
  } else {
    engine::Trainer trainer(ServeConfig(f.no_index));
    Result<engine::TrainedModel> model =
        trainer.Fit(bench.value().log, bench.value().registry);
    if (!model.ok()) Die("training failed", model.status());
    if (!f.save_model.empty()) {
      Status st = model.value().SaveToFile(f.save_model);
      if (!st.ok()) Die("model save failed", st);
    }
    Result<engine::Predictor> loaded =
        engine::Predictor::Load(std::move(model.value()));
    if (!loaded.ok()) Die("model load failed", loaded.status());
    predictor = std::make_shared<const engine::Predictor>(
        std::move(loaded.value()));
  }

  std::printf(
      "{\"bench\":\"serve_slo\",\"config\":\"provenance\",\"trace\":\"%s\","
      "\"events\":%zu,\"model\":\"%s\",\"train_size\":%zu,"
      "\"use_index\":%s,\"world_users\":%u,\"world_sessions\":%u,"
      "\"world_rows\":%u,\"world_seed\":%llu}\n",
      f.trace.c_str(), trace.records.size(), model_source,
      predictor->train_size(), predictor->config().use_index ? "true" : "false",
      trace.world->num_users, trace.world->num_sessions,
      trace.world->rows_per_dataset,
      static_cast<unsigned long long>(trace.world->seed));

  const replay::ReplayOptions opt = ReplayOptionsFor(f);
  serve::SessionManager manager(predictor);
  Result<replay::ReplayReport> run =
      replay::ReplayTrace(manager, bench.value().registry, trace, opt);
  if (!run.ok()) Die("replay failed", run.status());
  const replay::ReplayReport& report = run.value();
  PrintReplayLine(f, report, f.speed > 0.0 ? "paced" : "unthrottled");

  // Determinism: a second, fresh manager replays the same trace with the
  // pacing removed (arrival times never feed the prediction math); the
  // advise answers must match the measured run bit for bit.
  bool deterministic = true;
  if (f.check_determinism) {
    replay::ReplayOptions unpaced = opt;
    unpaced.speed = 0.0;
    serve::SessionManager manager2(predictor);
    Result<replay::ReplayReport> rerun =
        replay::ReplayTrace(manager2, bench.value().registry, trace, unpaced);
    if (!rerun.ok()) Die("determinism replay failed", rerun.status());
    const std::vector<Prediction>& a = report.predictions;
    const std::vector<Prediction>& b = rerun.value().predictions;
    size_t mismatches = 0;
    if (a.size() != b.size()) {
      mismatches = a.size() > b.size() ? a.size() : b.size();
    } else {
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].label != b[i].label ||
            !BitEqual(a[i].confidence, b[i].confidence)) {
          ++mismatches;
        }
      }
    }
    deterministic = mismatches == 0 && rerun.value().errors == 0;
    std::printf(
        "{\"bench\":\"serve_slo\",\"config\":\"determinism\",\"runs\":2,"
        "\"predictions\":%zu,\"mismatches\":%zu,"
        "\"bitwise_identical\":%s}\n",
        a.size(), mismatches, deterministic ? "true" : "false");
  }

  if (!f.metrics_json.empty()) {
    Status st = obs::WriteMetricsJson(f.metrics_json);
    if (!st.ok()) Die("metrics snapshot failed", st);
  }

  const double p99_us = report.advise_service.p99 * 1e6;
  const bool meets_slo =
      f.slo_p99_us == 0 || p99_us <= static_cast<double>(f.slo_p99_us);
  const bool ok = report.errors == 0 && deterministic && meets_slo;
  std::printf(
      "{\"bench\":\"serve_slo\",\"config\":\"verdict\",\"advise_p99_us\":"
      "%.1f,\"slo_p99_us\":%llu,\"errors\":%zu,\"deterministic\":%s,"
      "\"meets_slo\":%s,\"ok\":%s}\n",
      p99_us, static_cast<unsigned long long>(f.slo_p99_us), report.errors,
      deterministic ? "true" : "false", meets_slo ? "true" : "false",
      ok ? "true" : "false");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ida

int main(int argc, char** argv) {
  ida::Flags flags = ida::ParseFlags(argc, argv);
  if (!flags.make_trace.empty()) return ida::MakeTrace(flags);
  return ida::Replay(flags);
}
